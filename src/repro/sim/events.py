"""Event objects and the pending-event queue for the discrete-event kernel.

The queue is a binary heap keyed by ``(time, priority, sequence)``.  The
sequence number makes ordering total and deterministic: two events scheduled
for the same instant with the same priority fire in scheduling order, which
keeps runs bit-reproducible for a fixed seed.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped when
popped.  This keeps cancellation O(1), which matters because CSMA backoff and
reception bookkeeping cancel events constantly.  To stop cancelled entries
from bloating the heap (and taxing every subsequent push/pop with extra
comparisons), the queue *compacts* itself whenever the dead fraction of a
non-trivial heap exceeds ``compact_dead_fraction``: live events are filtered
out and re-heapified, which preserves the total ``(time, priority, seq)``
order exactly.

Band shards (DESIGN.md §15)
---------------------------
For large multi-band scenes the queue can be split into a *lazy k-way
heap-of-heaps*: :meth:`EventQueue.add_shard` registers an extra sub-heap and
:meth:`push` accepts a ``shard`` index.  The medium assigns one shard per
frequency band and routes band-local events (signal ends, CCA/backoff
timers) into it, keeping the main heap for cross-band and control events.

Sharding never changes dispatch order.  The sequence counter is *global*
across all heaps, so the ``(time, priority, seq)`` key remains a total
order over every pending event regardless of which heap holds it; a pop
selects the minimum across the main head and the k shard heads under
exactly that order.  What sharding buys is *churn isolation*: each band's
heavy CSMA cancellation churn lands in its own small heap, so push/pop
depth and compaction cost scale with the busiest band instead of with the
whole scene, and one band's dead entries never tax another band's pops.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

__all__ = ["Event", "EventQueue"]

_INFINITY = float("inf")


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Tie-breaker for events at the same instant; lower fires first.
    callback:
        Zero-argument callable invoked when the event fires.
    tag:
        Optional label used in traces and error messages.
    shard:
        Index of the sub-heap holding the event (``-1``: the main heap).
        Set by :meth:`EventQueue.push`; cancellation bookkeeping needs to
        know which heap's dead counter to charge.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "tag", "shard",
        "_cancelled", "_fired",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        tag: Optional[str] = None,
        shard: int = -1,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.tag = tag
        self.shard = shard
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Mark the event so it will be skipped when it reaches the head."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "Event") -> bool:
        # Tuple-free: this comparator runs O(n log n) times per simulation
        # inside heappush/heappop, and building two throwaway tuples per
        # call measurably shows up in kernel profiles.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        tag = f" tag={self.tag!r}" if self.tag else ""
        return f"<Event t={self.time:.9f} prio={self.priority}{tag} {state}>"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects.

    Parameters
    ----------
    compact_min_size:
        Heaps at or below this size are never compacted (the filter pass
        is not worth it).  Defaults to :data:`COMPACT_MIN_SIZE`.
    compact_dead_fraction:
        Compact a heap when more than this fraction of its entries are
        cancelled.  The 0.5 default suits ordinary runs; high-churn
        50k-mote scenes may prefer a smaller fraction (compact eagerly,
        keep pops shallow) or a larger one (compact rarely, tolerate
        skips).
    """

    #: Default for ``compact_min_size`` (kept as a class attribute for
    #: backwards compatibility with callers that read it directly).
    COMPACT_MIN_SIZE = 64

    def __init__(
        self,
        compact_min_size: Optional[int] = None,
        compact_dead_fraction: float = 0.5,
    ) -> None:
        if compact_min_size is None:
            compact_min_size = self.COMPACT_MIN_SIZE
        if compact_min_size < 0:
            raise ValueError(
                f"compact_min_size must be >= 0, got {compact_min_size}"
            )
        if not 0.0 < compact_dead_fraction <= 1.0:
            raise ValueError(
                "compact_dead_fraction must be in (0, 1], "
                f"got {compact_dead_fraction}"
            )
        self.compact_min_size = int(compact_min_size)
        self.compact_dead_fraction = float(compact_dead_fraction)
        self._heap: List[Event] = []
        self._shards: List[List[Event]] = []
        self._counter = itertools.count()
        self._live = 0
        #: Cancelled-but-still-heaped entry counts, per heap; drive the
        #: compaction trigger without O(n) scans.
        self._dead_main = 0
        self._shard_dead: List[int] = []
        #: Total compaction passes over the queue's lifetime (obs gauge).
        self.compactions = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def live(self) -> int:
        """Live event count (gauge-friendly alias of ``len``)."""
        return self._live

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------
    def add_shard(self) -> int:
        """Register a new sub-heap and return its shard index.

        Shards are created lazily by the medium (one per frequency band
        in use) and live for the queue's lifetime.
        """
        self._shards.append([])
        self._shard_dead.append(0)
        return len(self._shards) - 1

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its handle.

        ``shard`` selects the sub-heap (``None``: the main heap).  The
        sequence counter is shared across all heaps, so shard placement
        never affects dispatch order — only which heap carries the entry.
        """
        if shard is None:
            event = Event(time, priority, next(self._counter), callback, tag)
            heapq.heappush(self._heap, event)
        else:
            event = Event(
                time, priority, next(self._counter), callback, tag, shard
            )
            heapq.heappush(self._shards[shard], event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by :meth:`push`.

        Cancelling an already-cancelled or already-fired event is a no-op.
        When the cancelled fraction of the event's heap exceeds
        ``compact_dead_fraction``, that heap is compacted (dead entries
        dropped, then re-heapified).
        """
        if event._cancelled or event._fired:
            return
        event._cancelled = True
        self._live -= 1
        shard = event.shard
        if shard < 0:
            heap = self._heap
            dead = self._dead_main = self._dead_main + 1
        else:
            heap = self._shards[shard]
            dead = self._shard_dead[shard] = self._shard_dead[shard] + 1
        size = len(heap)
        if size > self.compact_min_size and dead > size * self.compact_dead_fraction:
            self._compact(shard)

    def _compact(self, shard: int = -1) -> None:
        """Drop cancelled entries from one heap and restore its invariant.

        Ordering is untouched: the heap property is re-established over the
        same total order (``Event.__lt__``), so the pop sequence of live
        events is identical before and after compaction.
        """
        if shard < 0:
            self._heap = [event for event in self._heap if not event._cancelled]
            heapq.heapify(self._heap)
            self._dead_main = 0
        else:
            live = [e for e in self._shards[shard] if not e._cancelled]
            heapq.heapify(live)
            self._shards[shard] = live
            self._shard_dead[shard] = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        event = self.pop_due(_INFINITY)
        if event is None:
            raise IndexError("pop from empty EventQueue")
        return event

    def pop_due(self, until: float) -> Optional[Event]:
        """Pop the earliest live event at or before ``until``, else ``None``.

        Fuses the ``peek_time`` + ``pop`` pair the kernel run loop would
        otherwise perform.  With shards registered, the head of each
        sub-heap is compared against the main head under the global
        ``(time, priority, seq)`` order, so the dispatch sequence is
        byte-identical to a single-heap queue holding the same events.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head._cancelled:
                heapq.heappop(heap)
                self._dead_main -= 1
                continue
            break
        if not self._shards:
            # Fast path: no shards registered (the common small-scene
            # case) — identical to the single-heap queue.
            if not heap:
                return None
            head = heap[0]
            if head.time > until:
                return None
            heapq.heappop(heap)
            head._fired = True
            self._live -= 1
            return head
        best = heap[0] if heap else None
        shards = self._shards
        shard_dead = self._shard_dead
        for i, sub in enumerate(shards):
            while sub:
                head = sub[0]
                if head._cancelled:
                    heapq.heappop(sub)
                    shard_dead[i] -= 1
                    continue
                if best is None or head < best:
                    best = head
                break
        if best is None or best.time > until:
            return None
        shard = best.shard
        if shard < 0:
            heapq.heappop(heap)
        else:
            heapq.heappop(shards[shard])
        best._fired = True
        self._live -= 1
        return best

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0]._cancelled:
            heapq.heappop(heap)
            self._dead_main -= 1
        best = heap[0] if heap else None
        for i, sub in enumerate(self._shards):
            while sub and sub[0]._cancelled:
                heapq.heappop(sub)
                self._shard_dead[i] -= 1
            if sub and (best is None or sub[0] < best):
                best = sub[0]
        return best.time if best is not None else None

    # ------------------------------------------------------------------
    # Audit / maintenance
    # ------------------------------------------------------------------
    def scan_live(self) -> int:
        """Count live events by a full scan over every heap (O(n)).

        Audit hook for the invariant layer
        (:mod:`repro.check.invariants`): the lazily-maintained
        :attr:`_live` counter drives ``__len__``/``__bool__`` and hence
        the run loop's termination, so a drifted counter would silently
        truncate or overrun a simulation.  ``scan_live`` recomputes the
        ground truth so the checker can compare.
        """
        count = sum(1 for event in self._heap if not event._cancelled)
        for sub in self._shards:
            count += sum(1 for event in sub if not event._cancelled)
        return count

    def clear(self) -> None:
        """Drop every pending event (shard registrations are kept)."""
        self._heap.clear()
        for sub in self._shards:
            sub.clear()
        self._dead_main = 0
        self._shard_dead = [0] * len(self._shards)
        self._live = 0
