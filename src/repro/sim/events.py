"""Event objects and the pending-event queue for the discrete-event kernel.

The queue is a binary heap keyed by ``(time, priority, sequence)``.  The
sequence number makes ordering total and deterministic: two events scheduled
for the same instant with the same priority fire in scheduling order, which
keeps runs bit-reproducible for a fixed seed.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped when
popped.  This keeps cancellation O(1), which matters because CSMA backoff and
reception bookkeeping cancel events constantly.  To stop cancelled entries
from bloating the heap (and taxing every subsequent push/pop with extra
comparisons), the queue *compacts* itself whenever more than half of a
non-trivial heap is dead: live events are filtered out and re-heapified,
which preserves the total ``(time, priority, seq)`` order exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Tie-breaker for events at the same instant; lower fires first.
    callback:
        Zero-argument callable invoked when the event fires.
    tag:
        Optional label used in traces and error messages.
    """

    __slots__ = ("time", "priority", "seq", "callback", "tag", "_cancelled", "_fired")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        tag: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.tag = tag
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Mark the event so it will be skipped when it reaches the head."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "Event") -> bool:
        # Tuple-free: this comparator runs O(n log n) times per simulation
        # inside heappush/heappop, and building two throwaway tuples per
        # call measurably shows up in kernel profiles.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        tag = f" tag={self.tag!r}" if self.tag else ""
        return f"<Event t={self.time:.9f} prio={self.priority}{tag} {state}>"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its handle."""
        event = Event(time, priority, next(self._counter), callback, tag)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    #: Heaps smaller than this are never compacted (not worth the filter).
    COMPACT_MIN_SIZE = 64

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by :meth:`push`.

        Cancelling an already-cancelled or already-fired event is a no-op.
        When the cancelled fraction of the heap exceeds one half, the heap
        is compacted (dead entries dropped, then re-heapified).
        """
        if not event._cancelled and not event._fired:
            event.cancel()
            self._live -= 1
            heap_size = len(self._heap)
            if heap_size > self.COMPACT_MIN_SIZE and self._live < (heap_size >> 1):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        Ordering is untouched: the heap property is re-established over the
        same total order (``Event.__lt__``), so the pop sequence of live
        events is identical before and after compaction.
        """
        self._heap = [event for event in self._heap if not event._cancelled]
        heapq.heapify(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event._fired = True
                self._live -= 1
                return event
        raise IndexError("pop from empty EventQueue")

    def pop_due(self, until: float) -> Optional[Event]:
        """Pop the earliest live event at or before ``until``, else ``None``.

        Fuses the ``peek_time`` + ``pop`` pair the kernel run loop would
        otherwise perform, halving the per-event queue overhead on the
        hottest loop in the simulator.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head._cancelled:
                heapq.heappop(heap)
                continue
            if head.time > until:
                return None
            heapq.heappop(heap)
            head._fired = True
            self._live -= 1
            return head
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def scan_live(self) -> int:
        """Count live events by a full heap scan (O(n)).

        Audit hook for the invariant layer
        (:mod:`repro.check.invariants`): the lazily-maintained
        :attr:`_live` counter drives ``__len__``/``__bool__`` and hence
        the run loop's termination, so a drifted counter would silently
        truncate or overrun a simulation.  ``scan_live`` recomputes the
        ground truth so the checker can compare.
        """
        return sum(1 for event in self._heap if not event._cancelled)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
