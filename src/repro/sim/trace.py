"""Structured trace recording and counters.

Model components emit trace records (``trace.emit(kind, **fields)``) and bump
named counters.  Traces are disabled by default — the emit path then costs a
single attribute check — and can be enabled per-run for debugging or for
tests that assert on event sequences.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, MutableSequence, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:.6f}] {self.kind} {parts}".rstrip()


class Trace:
    """Collects :class:`TraceRecord` entries and named counters.

    Parameters
    ----------
    enabled / keep_records:
        Master switch and whether individual records (vs just counters)
        are retained.
    max_records:
        When set, :attr:`records` becomes a ring buffer of that capacity:
        the oldest records are dropped (and counted on
        :attr:`records_dropped`) so a long fig-scale run with tracing on
        cannot exhaust memory.  ``None`` (the default) keeps the
        historical unbounded-list behaviour.  Counters are never
        affected, and :meth:`of_kind`/:meth:`last` see whatever is still
        retained, across wraparound.
    """

    def __init__(self, enabled: bool = True, keep_records: bool = True,
                 max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.enabled = enabled
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: MutableSequence[TraceRecord] = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.records_dropped = 0
        self.counters: Counter = Counter()
        self._clock = lambda: 0.0

    def bind_clock(self, clock) -> None:
        """Attach a zero-argument callable returning the current sim time."""
        self._clock = clock

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event (no-op when disabled).

        Hot paths should guard the call with ``if trace.enabled:`` — that
        makes a disabled trace genuinely zero-cost, because even reaching
        this early-out requires Python to build the ``fields`` kwargs dict
        and execute a call frame.
        """
        if not self.enabled:
            return
        self.counters[kind] += 1
        if self.keep_records:
            if (self.max_records is not None
                    and len(self.records) == self.max_records):
                self.records_dropped += 1
            self.records.append(TraceRecord(self._clock(), kind, fields))

    def count(self, kind: str) -> int:
        """Number of times ``kind`` was emitted."""
        return self.counters[kind]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of the given kind, in emission order."""
        return [r for r in self.records if r.kind == kind]

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of ``kind``, or ``None``."""
        for record in reversed(self.records):
            if record.kind == kind:
                return record
        return None

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
        self.records_dropped = 0
