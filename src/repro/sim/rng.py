"""Deterministic named random-number streams.

Every stochastic decision in the simulator (backoff draws, per-packet fading,
bit-error sampling, topology placement, ...) pulls from a *named* stream so
that adding randomness to one component never perturbs another.  Streams are
derived from a single root seed with ``numpy``'s ``SeedSequence.spawn``-style
keying, so a run is fully determined by ``(root_seed, stream names used)``.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed)!r}")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator object within one
        :class:`RngStreams` instance, and to an identically-seeded generator
        across instances built with the same root seed.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Key the child seed on a stable hash of the name: independent of
            # creation order and of Python's randomized str hashing.
            name_key = zlib.crc32(name.encode("utf-8"))
            seed_seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(name_key,)
            )
            generator = np.random.Generator(np.random.PCG64(seed_seq))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent :class:`RngStreams` (e.g. per repetition)."""
        return RngStreams(root_seed=(self.root_seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
