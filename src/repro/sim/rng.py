"""Deterministic named random-number streams.

Every stochastic decision in the simulator (backoff draws, per-packet fading,
bit-error sampling, topology placement, ...) pulls from a *named* stream so
that adding randomness to one component never perturbs another.  Streams are
derived from a single root seed with ``numpy``'s ``SeedSequence.spawn``-style
keying, so a run is fully determined by ``(root_seed, stream names used)``.

Batched stream creation
-----------------------
Large scenes create one fading stream per audible link — 10^5+ streams whose
construction cost (``SeedSequence`` → ``PCG64`` → ``Generator``, ~20 µs each)
dominates the first transmission of every source.  :meth:`RngStreams.
stream_many` replicates ``SeedSequence``'s entropy-mixing arithmetic directly
(the pool prefix is shared by every stream of one root seed and computed
once; the per-key final round and ``generate_state`` are vectorized over
uint32 arrays) and hands the resulting state words to ``PCG64`` through a
:class:`numpy.random.bit_generator.ISeedSequence` stand-in.  The generators
are **bit-identical** to :meth:`RngStreams.stream`'s (property-tested in
``tests/sim/test_rng.py``), ~7× cheaper to create.
"""

from __future__ import annotations

import sys
import zlib
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["RngStreams"]

# ----------------------------------------------------------------------
# SeedSequence entropy-mixing replica (constants from numpy's
# random/bit_generator.pyx; the equality is pinned by property tests, so
# a numpy that changed its mixing would fail loudly, not silently).
# ----------------------------------------------------------------------
_M32 = 0xFFFFFFFF
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_POOL_SIZE = 4

try:  # pragma: no cover - import guard exercised only on exotic builds
    from numpy.random.bit_generator import ISeedSequence as _ISeedSequence

    # The fast path reinterprets uint32 state pairs as uint64 via
    # ndarray.view, which assumes little-endian layout.
    _FAST_SEED_OK = sys.byteorder == "little"
except ImportError:  # pragma: no cover
    _ISeedSequence = object
    _FAST_SEED_OK = False


def _entropy_words(value: int) -> List[int]:
    """``value`` as little-endian uint32 words (SeedSequence's coercion)."""
    if value < 0:
        raise ValueError(f"entropy must be non-negative, got {value}")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _M32)
        value >>= 32
    return words


class _PrecomputedSeed(_ISeedSequence):
    """Duck-typed ``ISeedSequence`` wrapping precomputed state words.

    ``PCG64(seed_seq)`` only ever calls ``generate_state(4, uint64)``;
    serving those words from a plain array skips the whole entropy-mixing
    machinery on the construction hot path.
    """

    def __init__(self, words64: np.ndarray) -> None:
        self._words64 = words64

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        words = self._words64
        if np.dtype(dtype) == np.uint64:
            if n_words <= len(words):
                return words[:n_words]
        elif np.dtype(dtype) == np.uint32:
            words32 = words.view(np.uint32)
            if n_words <= len(words32):
                return words32[:n_words]
        raise ValueError(
            f"_PrecomputedSeed holds {len(words)} uint64 words; "
            f"cannot serve {n_words} x {np.dtype(dtype).name}"
        )


class RngStreams:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed)!r}")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}
        #: Shared entropy-pool prefix for the fast path: ``(pool, hash_const)``
        #: after mixing the root seed's words, before the spawn key.
        self._pool_prefix = None

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator object within one
        :class:`RngStreams` instance, and to an identically-seeded generator
        across instances built with the same root seed.  This scalar path
        is the *reference* construction; :meth:`stream_many` must match it
        bit for bit.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Key the child seed on a stable hash of the name: independent of
            # creation order and of Python's randomized str hashing.
            name_key = zlib.crc32(name.encode("utf-8"))
            seed_seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(name_key,)
            )
            generator = np.random.Generator(np.random.PCG64(seed_seq))
            self._streams[name] = generator
        return generator

    # ------------------------------------------------------------------
    # Batched creation (the fanout-build hot path)
    # ------------------------------------------------------------------
    def stream_many(self, names: Sequence[str]) -> List[np.random.Generator]:
        """Generators for ``names`` (cached or created), in input order.

        Creation is batched through the vectorized seed derivation; each
        resulting generator draws the exact bit stream :meth:`stream`
        would produce for the same name, and the two paths share one
        cache, so they can be mixed freely.
        """
        streams = self._streams
        missing = [name for name in names if name not in streams]
        if missing:
            if _FAST_SEED_OK:
                keys = np.array(
                    [zlib.crc32(name.encode("utf-8")) for name in missing],
                    dtype=np.uint32,
                )
                words = self._seed_words_batch(keys)
                pcg64 = np.random.PCG64
                generator_cls = np.random.Generator
                for name, row in zip(missing, words):
                    streams[name] = generator_cls(pcg64(_PrecomputedSeed(row)))
            else:  # pragma: no cover - big-endian / no-ISeedSequence builds
                for name in missing:
                    self.stream(name)
        return [streams[name] for name in names]

    def _mix_prefix(self):
        """Entropy pool after the root seed's words, before any spawn key.

        Replicates ``SeedSequence.mix_entropy`` over the assembled entropy
        ``root_words (zero-padded to 4) + [spawn_key]`` for *every* word
        except the trailing spawn key: the pool fill, the pool cross-mix
        and any root words beyond the pool size.  The returned
        ``(pool, hash_const)`` depends only on the root seed, so it is
        computed once and reused for every key.
        """
        prefix = self._pool_prefix
        if prefix is not None:
            return prefix
        words = _entropy_words(self.root_seed)
        if len(words) < _POOL_SIZE:
            # SeedSequence zero-pads the run entropy to the pool size
            # whenever a spawn key is present (ours always is).
            words = words + [0] * (_POOL_SIZE - len(words))
        hash_const = _INIT_A

        def hashmix(value: int) -> int:
            nonlocal hash_const
            value = (value ^ hash_const) & _M32
            hash_const = (hash_const * _MULT_A) & _M32
            value = (value * hash_const) & _M32
            value ^= value >> 16
            return value

        def mix(x: int, y: int) -> int:
            result = ((_MIX_MULT_L * x) - (_MIX_MULT_R * y)) & _M32
            result ^= result >> 16
            return result

        pool = [hashmix(words[i]) for i in range(_POOL_SIZE)]
        for i_src in range(_POOL_SIZE):
            for i_dst in range(_POOL_SIZE):
                if i_src != i_dst:
                    pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
        for i_src in range(_POOL_SIZE, len(words)):
            # hashmix re-invoked per destination (hash_const advances each
            # time), exactly as SeedSequence.mix_entropy's inner loop does.
            for i_dst in range(_POOL_SIZE):
                pool[i_dst] = mix(pool[i_dst], hashmix(words[i_src]))
        prefix = (pool, hash_const)
        self._pool_prefix = prefix
        return prefix

    def _seed_words_batch(self, keys: np.ndarray) -> np.ndarray:
        """PCG64 seed words for each spawn key: shape ``(len(keys), 4)``.

        Equals ``SeedSequence(entropy=root_seed, spawn_key=(key,))
        .generate_state(4, uint64)`` per key, with the per-key final mix
        round and the output hash vectorized over all keys at once.
        """
        pool, hash_const = self._mix_prefix()
        n = len(keys)
        # Final mix round: the spawn key is the last assembled entropy
        # word; each pool word absorbs hashmix(key) via mix().  hash_const
        # advances once per destination word exactly as the scalar loop
        # would (same key hashed 4 times with an evolving constant).
        pool_k = np.empty((n, _POOL_SIZE), dtype=np.uint32)
        for dst in range(_POOL_SIZE):
            value = keys ^ np.uint32(hash_const)
            hash_const = (hash_const * _MULT_A) & _M32
            value = value * np.uint32(hash_const)
            value ^= value >> np.uint32(16)
            # The x-term of mix() involves only Python ints; wrap it before
            # entering uint32 arithmetic (scalar uint32 products warn on
            # overflow, array ones don't).
            x_term = np.uint32((_MIX_MULT_L * pool[dst]) & _M32)
            result = x_term - np.uint32(_MIX_MULT_R) * value
            result ^= result >> np.uint32(16)
            pool_k[:, dst] = result
        # generate_state(4, uint64): 8 uint32 output words hashed from the
        # pool (cycled), then viewed as little-endian uint64 pairs.
        out_const = _INIT_B
        out32 = np.empty((n, 2 * _POOL_SIZE), dtype=np.uint32)
        for i in range(2 * _POOL_SIZE):
            value = pool_k[:, i % _POOL_SIZE] ^ np.uint32(out_const)
            out_const = (out_const * _MULT_B) & _M32
            value = value * np.uint32(out_const)
            value ^= value >> np.uint32(16)
            out32[:, i] = value
        return out32.view(np.uint64)

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent :class:`RngStreams` (e.g. per repetition)."""
        return RngStreams(root_seed=(self.root_seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
