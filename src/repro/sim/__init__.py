"""Discrete-event simulation kernel.

Public surface:

- :class:`~repro.sim.simulator.Simulator` — clock + event queue.
- :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Sleep` —
  generator-based sequential behaviours.
- :class:`~repro.sim.rng.RngStreams` — named deterministic random streams.
- :class:`~repro.sim.trace.Trace` — structured trace records and counters.
- :mod:`~repro.sim.units` — dBm/mW and time-unit helpers.
"""

from .events import Event, EventQueue
from .process import Process, ProcessError, Sleep
from .rng import RngStreams
from .simulator import SimulationError, Simulator
from .trace import Trace, TraceRecord
from .units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    ZERO_POWER_DBM,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    mw_to_dbm,
    sum_powers_dbm,
)

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "ProcessError",
    "Sleep",
    "RngStreams",
    "SimulationError",
    "Simulator",
    "Trace",
    "TraceRecord",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ZERO_POWER_DBM",
    "db_to_linear",
    "dbm_to_mw",
    "linear_to_db",
    "mw_to_dbm",
    "sum_powers_dbm",
]
