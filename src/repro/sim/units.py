"""Unit conversions and physical constants used across the simulator.

Conventions
-----------
- Time is measured in **seconds** (floats).
- Frequency is measured in **MHz** (floats); channel offsets (CFD) too.
- Power is expressed in **dBm** at API boundaries and converted to **mW**
  (linear) whenever powers must be summed.

The helpers here are deliberately tiny, pure functions so that every other
module can rely on them without pulling in heavier dependencies.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "sum_powers_dbm",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ZERO_POWER_DBM",
]

#: One microsecond, in seconds.
MICROSECOND = 1e-6
#: One millisecond, in seconds.
MILLISECOND = 1e-3
#: One second, in seconds (for symmetry / readability at call sites).
SECOND = 1.0

#: Conventional "no signal" floor.  Used when a linear power of exactly zero
#: must be represented on the dBm scale without producing ``-inf``.
ZERO_POWER_DBM = -200.0

# Linear power below which we clamp to ZERO_POWER_DBM instead of log10.
_MIN_MW = 10.0 ** (ZERO_POWER_DBM / 10.0)


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level in milliwatts to dBm.

    Powers at or below the representable floor (including zero and negative
    round-off residue) map to :data:`ZERO_POWER_DBM` rather than raising.
    """
    if mw <= _MIN_MW:
        return ZERO_POWER_DBM
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a dimensionless ratio in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB. ``ratio`` must be positive."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def sum_powers_dbm(levels_dbm) -> float:
    """Sum an iterable of dBm levels in the linear domain, returning dBm.

    An empty iterable yields :data:`ZERO_POWER_DBM`.
    """
    total = 0.0
    for level in levels_dbm:
        total += dbm_to_mw(level)
    return mw_to_dbm(total)
