"""A sensor node: radio + MAC at a position, with an identity.

Nodes are deliberately thin — behaviour lives in the MAC/radio and in the
traffic source attached by the deployment.  The node's job is wiring and
naming.
"""

from __future__ import annotations

from typing import Optional

from ..mac.cca import CcaPolicy, FixedCcaThreshold
from ..mac.mac import Mac
from ..mac.params import MacParams
from ..phy.mask import SpectralMask
from ..phy.medium import Medium
from ..phy.propagation import Position
from ..phy.radio import Radio, RadioConfig
from ..sim.rng import RngStreams
from ..sim.simulator import Simulator

__all__ = ["Node"]


class Node:
    """One mote: a radio and a MAC bound to it."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        rng: RngStreams,
        name: str,
        position: Position,
        channel_mhz: float,
        tx_power_dbm: float,
        mac_params: Optional[MacParams] = None,
        cca_policy: Optional[CcaPolicy] = None,
        radio_config: Optional[RadioConfig] = None,
        mask: Optional[SpectralMask] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.position = position
        self.radio = Radio(
            sim=sim,
            medium=medium,
            name=name,
            position=position,
            channel_mhz=channel_mhz,
            tx_power_dbm=tx_power_dbm,
            mask=mask,
            config=radio_config,
            rng=rng,
        )
        self.mac = Mac(
            sim=sim,
            radio=self.radio,
            rng=rng.stream(f"mac.{name}"),
            params=mac_params,
            cca_policy=cca_policy if cca_policy is not None else FixedCcaThreshold(),
        )

    @property
    def channel_mhz(self) -> float:
        return self.radio.channel_mhz

    @property
    def tx_power_dbm(self) -> float:
        return self.radio.tx_power_dbm

    @property
    def stats(self):
        return self.mac.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.name} @{self.position} ch={self.channel_mhz} MHz "
            f"p={self.tx_power_dbm:g} dBm>"
        )
