"""Network layer: nodes, traffic, topologies, assignment and deployments."""

from .assignment import (
    assignment_cost,
    interference_matrix,
    min_interference_assignment,
    orthogonal_assignment,
    reassign,
)
from .deployment import Deployment, Network, PolicyFactory, zigbee_policy_factory
from .node import Node
from .topology import (
    LinkSpec,
    NetworkSpec,
    NodeSpec,
    PowerAssignment,
    clustered_region_topology,
    fixed_power,
    one_region_topology,
    random_power,
    random_topology,
    separated_clusters_topology,
)
from .traffic import (
    DEFAULT_PAYLOAD_BYTES,
    AttackerSource,
    PoissonSource,
    SaturatedSource,
    TrafficSource,
)

__all__ = [
    "assignment_cost",
    "interference_matrix",
    "min_interference_assignment",
    "orthogonal_assignment",
    "reassign",
    "Deployment",
    "Network",
    "PolicyFactory",
    "zigbee_policy_factory",
    "Node",
    "LinkSpec",
    "NetworkSpec",
    "NodeSpec",
    "PowerAssignment",
    "clustered_region_topology",
    "fixed_power",
    "one_region_topology",
    "random_power",
    "random_topology",
    "separated_clusters_topology",
    "DEFAULT_PAYLOAD_BYTES",
    "AttackerSource",
    "PoissonSource",
    "SaturatedSource",
    "TrafficSource",
]
