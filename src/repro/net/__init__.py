"""Network layer: nodes, traffic, topologies, assignment, deployments
and multi-hop routing (:mod:`repro.net.routing`)."""

from .assignment import (
    assignment_cost,
    interference_matrix,
    min_interference_assignment,
    orthogonal_assignment,
    reassign,
)
from .deployment import Deployment, Network, PolicyFactory, zigbee_policy_factory
from .node import Node
from .routing import ConvergecastSource, Router, RoutingConfig, RoutingFabric
from .topology import (
    LinkSpec,
    NetworkSpec,
    NodeSpec,
    PowerAssignment,
    clustered_region_topology,
    fixed_power,
    grid_topology,
    one_region_topology,
    random_power,
    random_topology,
    separated_clusters_topology,
    sink_name,
)
from .traffic import (
    DEFAULT_PAYLOAD_BYTES,
    AttackerSource,
    PoissonSource,
    SaturatedSource,
    TrafficSource,
)

__all__ = [
    "assignment_cost",
    "interference_matrix",
    "min_interference_assignment",
    "orthogonal_assignment",
    "reassign",
    "Deployment",
    "Network",
    "PolicyFactory",
    "zigbee_policy_factory",
    "Node",
    "ConvergecastSource",
    "Router",
    "RoutingConfig",
    "RoutingFabric",
    "LinkSpec",
    "NetworkSpec",
    "NodeSpec",
    "PowerAssignment",
    "clustered_region_topology",
    "fixed_power",
    "grid_topology",
    "one_region_topology",
    "random_power",
    "random_topology",
    "separated_clusters_topology",
    "sink_name",
    "DEFAULT_PAYLOAD_BYTES",
    "AttackerSource",
    "PoissonSource",
    "SaturatedSource",
    "TrafficSource",
]
