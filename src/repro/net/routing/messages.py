"""Routing-layer message vocabulary.

Four message kinds, mirroring the wsnlab cluster-tree protocol the
ROADMAP points at:

- :class:`Hello` — the periodic neighbour-discovery beacon (broadcast).
  Carries the sender's tree state (hop count to the sink, parent) plus a
  slice of its *direct* neighbour table, so receivers learn two-hop
  neighbours by table sharing.
- :class:`JoinRequest` / :class:`JoinAccept` — the cluster-tree join
  handshake (unicast child -> candidate parent -> child).
- :class:`DataHeader` — the network header of an application report:
  origin, final destination, end-to-end sequence number, TTL, hop and
  path trace, creation timestamp.

Messages are plain frozen dataclasses attached to ``Frame.info``; they
are never serialised to air.  Their *on-air* cost is modelled by the
``*_payload_bytes`` helpers, which size each frame's payload from the
message content so airtime scales with what a real encoding would cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "UNREACHABLE",
    "Hello",
    "JoinRequest",
    "JoinAccept",
    "DataHeader",
    "hello_payload_bytes",
    "JOIN_PAYLOAD_BYTES",
    "DATA_HEADER_BYTES",
]

#: Hop count of a node that has not joined the tree (sentinel "infinity"
#: that still compares/propagates safely as an int).
UNREACHABLE = 1 << 16

#: On-air bytes of the fixed HELLO part: sender address (2), hop count
#: (2), parent address (2), flags (1), shared-entry count (1).
_HELLO_BASE_BYTES = 8
#: On-air bytes per shared neighbour entry: address (2) + hop distance (1).
_HELLO_SHARED_ENTRY_BYTES = 3
#: On-air payload of either join-handshake message: child (2), parent
#: (2), hop count (2), status (1), pan/network id (2), reserved (1).
JOIN_PAYLOAD_BYTES = 10
#: On-air network-header bytes prefixed to every routed data report:
#: origin (2), destination (2), sequence (2), TTL (1), hops (1),
#: creation timestamp (4).
DATA_HEADER_BYTES = 12


def hello_payload_bytes(n_shared: int) -> int:
    """On-air payload of a HELLO sharing ``n_shared`` neighbour entries."""
    return _HELLO_BASE_BYTES + _HELLO_SHARED_ENTRY_BYTES * n_shared


@dataclass(frozen=True)
class Hello:
    """Neighbour-discovery beacon (broadcast).

    ``shared`` lists a slice of the sender's direct neighbour table as
    ``(name, hop_count_to_sink)`` pairs — receivers register these as
    two-hop neighbours reachable *via* the sender (multi-hop neighbour
    table population by table sharing).
    """

    sender: str
    hop_count: int
    parent: Optional[str]
    shared: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class JoinRequest:
    """Child asks a joined neighbour to adopt it (unicast)."""

    child: str
    parent: str


@dataclass(frozen=True)
class JoinAccept:
    """Parent confirms adoption and tells the child its hop count."""

    parent: str
    child: str
    hop_count: int


@dataclass(frozen=True)
class DataHeader:
    """Network header of one end-to-end application report.

    ``hops``/``path`` are the forwarding trace accumulated so far; the
    path records every node that transmitted the report (origin first),
    which is the per-packet route tracing the metrics layer exports.
    """

    origin: str
    destination: str
    seq: int
    ttl: int
    created_s: float
    hops: int = 0
    path: Tuple[str, ...] = ()

    def forwarded_by(self, node: str) -> "DataHeader":
        """The header as re-framed by ``node`` for its next hop."""
        return DataHeader(
            origin=self.origin,
            destination=self.destination,
            seq=self.seq,
            ttl=self.ttl - 1,
            created_s=self.created_s,
            hops=self.hops + 1,
            path=self.path + (node,),
        )
