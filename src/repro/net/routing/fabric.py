"""RoutingFabric: attach a routing layer to a whole deployment.

The fabric is the deployment-level counterpart of :class:`~repro.net.
routing.forwarding.Router`: it builds one router per node (per network),
resolves each network's sink, hands every router its dedicated RNG
streams, optionally attaches convergecast sources, and aggregates the
per-router statistics into one deterministic summary dict — the numbers
the convergecast exhibit reports.

Sink resolution per network: an explicit ``sinks`` mapping wins; else a
node named :func:`~repro.net.topology.sink_name` of the network label
(what :func:`~repro.net.topology.grid_topology` creates); else the first
node of the spec.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from ..deployment import Deployment
from ..topology import sink_name
from .config import RoutingConfig
from .convergecast import ConvergecastSource
from .forwarding import Router
from .messages import DataHeader

__all__ = ["RoutingFabric"]


class RoutingFabric:
    """All routers of one deployment, plus aggregate accounting."""

    def __init__(
        self,
        deployment: Deployment,
        sinks: Optional[Mapping[str, str]] = None,
        config: Optional[RoutingConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.config = config if config is not None else RoutingConfig()
        self.sinks: Dict[str, str] = {}
        self.routers: Dict[str, Router] = {}
        self.sources: List[ConvergecastSource] = []
        self.created_total = 0
        self._started = False
        for network in deployment.networks:
            label = network.label
            sink = self._resolve_sink(network, sinks)
            self.sinks[label] = sink
            for node in network.nodes:
                router = Router(
                    node, sink=sink, config=self.config, fabric=self
                )
                self.routers[node.name] = router

    @staticmethod
    def _resolve_sink(network, sinks: Optional[Mapping[str, str]]) -> str:
        names = [node.name for node in network.nodes]
        if sinks is not None and network.label in sinks:
            sink = sinks[network.label]
            if sink not in names:
                raise ValueError(
                    f"sink {sink!r} is not a node of network "
                    f"{network.label!r}"
                )
            return sink
        default = sink_name(network.label)
        if default in names:
            return default
        return names[0]

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start neighbour discovery on every router (idempotent)."""
        if self._started:
            return
        self._started = True
        rng = self.deployment.rng
        for name in sorted(self.routers):
            self.routers[name].start(rng.stream(f"routing.hello.{name}"))

    def attach_convergecast(
        self,
        interval_s: float = 1.0,
        jitter: float = 0.2,
        start_delay_s: float = 0.0,
        payload_bytes: Optional[int] = None,
    ) -> List[ConvergecastSource]:
        """One report source per non-sink router (not yet started)."""
        rng = self.deployment.rng
        sink_names = set(self.sinks.values())
        attached = []
        for name in sorted(self.routers):
            if name in sink_names:
                continue
            source = ConvergecastSource(
                router=self.routers[name],
                rng=rng.stream(f"routing.report.{name}"),
                interval_s=interval_s,
                jitter=jitter,
                start_delay_s=start_delay_s,
                payload_bytes=payload_bytes,
            )
            attached.append(source)
        self.sources.extend(attached)
        return attached

    def start_sources(self) -> None:
        for source in self.sources:
            source.start()

    def stop(self) -> None:
        for source in self.sources:
            source.stop()
        for name in sorted(self.routers):
            self.routers[name].stop()

    # ------------------------------------------------------------------
    # Router callbacks
    # ------------------------------------------------------------------
    def on_created(self, router: Router) -> None:
        self.created_total += 1

    def on_delivered(self, router: Router, header: DataHeader,
                     delay: float) -> None:
        pass  # sink routers keep the per-delivery records

    def on_joined(self, router: Router, first: bool) -> None:
        pass

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def sink_routers(self) -> List[Router]:
        return [
            self.routers[self.sinks[label]] for label in sorted(self.sinks)
        ]

    def joined_routers(self) -> List[Router]:
        return [
            self.routers[name] for name in sorted(self.routers)
            if self.routers[name].joined
        ]

    def summary(self) -> Dict[str, float]:
        """Deterministic network-wide routing metrics.

        Delivery is measured end-to-end: reports *originated* anywhere
        vs reports *delivered at a sink* (duplicates already suppressed
        per-router).  Join metrics cover non-sink nodes only — the sink
        is joined by construction at t = 0.
        """
        delays: List[float] = []
        hops: List[int] = []
        for sink in self.sink_routers():
            delays.extend(sink.stats.delays_s)
            hops.extend(sink.stats.hop_counts)
        sink_names = set(self.sinks.values())
        join_times = [
            router.tree.join_time_s
            for name, router in sorted(self.routers.items())
            if name not in sink_names and router.tree.join_time_s is not None
        ]
        n_motes = len(self.routers) - len(sink_names)
        totals = {
            "forwarded": 0, "duplicates": 0, "dropped_ttl": 0,
            "dropped_no_route": 0, "dropped_queue_full": 0,
            "join_requests": 0,
        }
        for name in sorted(self.routers):
            stats = self.routers[name].stats
            totals["forwarded"] += stats.forwarded
            totals["duplicates"] += stats.duplicates
            totals["dropped_ttl"] += stats.dropped_ttl
            totals["dropped_no_route"] += stats.dropped_no_route
            totals["dropped_queue_full"] += stats.dropped_queue_full
            totals["join_requests"] += (
                self.routers[name].tree.join_requests_sent
            )
        delivered = len(delays)
        created = self.created_total
        summary = {
            "nodes": float(len(self.routers)),
            "created": float(created),
            "delivered": float(delivered),
            "delivery_ratio": (delivered / created) if created else 0.0,
            "delay_mean_s": float(np.mean(delays)) if delays else 0.0,
            "delay_p95_s": (
                float(np.percentile(delays, 95.0)) if delays else 0.0
            ),
            "delay_max_s": float(max(delays)) if delays else 0.0,
            "hops_mean": float(np.mean(hops)) if hops else 0.0,
            "hops_max": float(max(hops)) if hops else 0.0,
            "joined_fraction": (
                len(join_times) / n_motes if n_motes else 1.0
            ),
            "join_time_mean_s": (
                float(np.mean(join_times)) if join_times else 0.0
            ),
            "join_time_max_s": (
                float(max(join_times)) if join_times else 0.0
            ),
        }
        summary.update({k: float(v) for k, v in sorted(totals.items())})
        return summary
