"""Routing state tables: neighbours, members, member networks.

Three tables per node, following the cluster-tree design the ROADMAP's
wsnlab reference sketches:

- :class:`NeighborTable` — who this node can hear (directly, from HELLO
  receptions) or reach in two hops (from HELLO table sharing), with
  RSSI, last-heard time and the neighbour's own tree state.  Entries age
  out after ``max_age_s`` without a refresh, so crashed or out-of-range
  nodes disappear from routing decisions.
- :class:`MembersTable` — the children this node has adopted (cluster
  members), recorded at join time.
- :class:`MemberNetworksTable` — which descendants are reachable through
  which child; populated as convergecast traffic flows upward (every
  report teaches each forwarder "``origin`` lies behind the hop I got it
  from"), and consulted for *downward* routing.

All iteration orders are deterministic (sorted by name) so identical
seeds produce identical routing decisions regardless of dict history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .messages import UNREACHABLE, Hello

__all__ = ["NeighborEntry", "NeighborTable", "MembersTable",
           "MemberNetworksTable"]


@dataclass
class NeighborEntry:
    """One row of the neighbour table.

    ``hops`` is the *neighbourhood* distance (1 = heard directly,
    2 = learned via table sharing), not the tree depth;
    ``hop_count_to_sink`` is the neighbour's advertised tree depth.
    ``via`` names the direct neighbour that advertised a two-hop entry
    (``None`` for direct neighbours).
    """

    name: str
    hops: int
    via: Optional[str]
    rssi_dbm: float
    last_heard_s: float
    hop_count_to_sink: int = UNREACHABLE
    parent: Optional[str] = None

    @property
    def joined(self) -> bool:
        return self.hop_count_to_sink < UNREACHABLE


class NeighborTable:
    """Per-node neighbour state, fed by HELLO receptions."""

    def __init__(self, owner: str, max_age_s: float) -> None:
        if max_age_s <= 0:
            raise ValueError(f"max_age_s must be > 0, got {max_age_s}")
        self.owner = owner
        self.max_age_s = max_age_s
        self.entries: Dict[str, NeighborEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def get(self, name: str) -> Optional[NeighborEntry]:
        return self.entries.get(name)

    # ------------------------------------------------------------------
    def observe_hello(self, hello: Hello, rssi_dbm: float, now: float) -> None:
        """Fold one received HELLO into the table.

        The sender becomes (or refreshes) a direct entry; every shared
        neighbour becomes a two-hop entry *via* the sender — unless we
        already hear that node directly (a direct entry is never
        downgraded by sharing).
        """
        self.entries[hello.sender] = NeighborEntry(
            name=hello.sender,
            hops=1,
            via=None,
            rssi_dbm=rssi_dbm,
            last_heard_s=now,
            hop_count_to_sink=hello.hop_count,
            parent=hello.parent,
        )
        for name, hop_count in hello.shared:
            if name == self.owner:
                continue
            existing = self.entries.get(name)
            if existing is not None and existing.hops == 1:
                # Keep the direct observation; sharing only ever *adds*
                # reach, it never overrides first-hand RSSI/tree state.
                continue
            self.entries[name] = NeighborEntry(
                name=name,
                hops=2,
                via=hello.sender,
                rssi_dbm=rssi_dbm,
                last_heard_s=now,
                hop_count_to_sink=hop_count,
            )

    def age(self, now: float) -> List[str]:
        """Drop entries not refreshed within ``max_age_s``; return them.

        A two-hop entry also dies with the direct neighbour it was
        learned through — stale ``via`` pointers must not survive as
        routes.
        """
        expired = [
            name for name, e in self.entries.items()
            if now - e.last_heard_s > self.max_age_s
        ]
        for name in expired:
            del self.entries[name]
        if expired:
            gone = set(expired)
            orphans = [
                name for name, e in self.entries.items()
                if e.via is not None and e.via in gone
            ]
            for name in orphans:
                del self.entries[name]
            expired.extend(orphans)
        return sorted(expired)

    # ------------------------------------------------------------------
    def route_to(self, destination: str,
                 min_rssi_dbm: Optional[float] = None) -> Optional[str]:
        """Mesh next hop toward ``destination``, if the table knows one.

        Direct neighbours are reached directly; two-hop neighbours via
        the direct neighbour that shared them.  Returns ``None`` when
        the destination is outside the (two-hop) mesh horizon, or when
        ``min_rssi_dbm`` is given and the first hop was last heard below
        it (an audible link is not necessarily a usable one).
        """
        entry = self.entries.get(destination)
        if entry is None:
            return None
        if entry.hops == 1:
            if min_rssi_dbm is not None and entry.rssi_dbm < min_rssi_dbm:
                return None
            return destination
        if entry.via is not None:
            via = self.entries.get(entry.via)
            if via is None:
                return None
            if min_rssi_dbm is not None and via.rssi_dbm < min_rssi_dbm:
                return None
            return entry.via
        return None

    def best_parent(
        self, min_rssi_dbm: Optional[float] = None
    ) -> Optional[NeighborEntry]:
        """The best candidate parent among *direct, joined* neighbours.

        Selection per the cluster-tree rule: lowest advertised hop count
        to the sink first, then strongest link (RSSI), then name — the
        final tiebreak keeps the choice deterministic.  ``min_rssi_dbm``
        applies the same link-quality gate as mesh routing: a parent
        whose beacons arrive near sensitivity would lose most upward
        traffic to retry exhaustion.
        """
        candidates = [
            e for e in self.entries.values()
            if e.hops == 1 and e.joined
            and (min_rssi_dbm is None or e.rssi_dbm >= min_rssi_dbm)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda e: (e.hop_count_to_sink, -e.rssi_dbm, e.name),
        )

    def direct(self) -> List[NeighborEntry]:
        """Direct neighbours, name-sorted (deterministic)."""
        return sorted(
            (e for e in self.entries.values() if e.hops == 1),
            key=lambda e: e.name,
        )

    def shared_slice(self, limit: int) -> List[NeighborEntry]:
        """The direct entries advertised in this node's own HELLOs."""
        return self.direct()[:limit]


class MembersTable:
    """Children adopted by this node, with their join times."""

    def __init__(self) -> None:
        self.children: Dict[str, float] = {}

    def add(self, child: str, now: float) -> None:
        self.children.setdefault(child, now)

    def remove(self, child: str) -> None:
        self.children.pop(child, None)

    def __contains__(self, child: str) -> bool:
        return child in self.children

    def __len__(self) -> int:
        return len(self.children)

    def names(self) -> List[str]:
        return sorted(self.children)


class MemberNetworksTable:
    """Downward routes: descendant -> the child subtree holding it.

    Learned from upward traffic (each forwarded report teaches
    ``origin -> previous hop``), so the table converges to the live tree
    without any extra control traffic.
    """

    def __init__(self) -> None:
        self.routes: Dict[str, str] = {}

    def learn(self, descendant: str, via_child: str) -> None:
        self.routes[descendant] = via_child

    def forget_child(self, child: str) -> None:
        """Drop every route through ``child`` (it left the cluster)."""
        for name in [n for n, via in self.routes.items() if via == child]:
            del self.routes[name]

    def route_to(self, destination: str) -> Optional[str]:
        return self.routes.get(destination)

    def __len__(self) -> int:
        return len(self.routes)
