"""Neighbour discovery: the periodic HELLO beacon process.

Each router runs one :class:`HelloBeacon` — a generator process that
broadcasts a HELLO every ``hello_interval_s`` (jittered from the
dedicated ``routing.hello.{node}`` RNG stream, so beacons desynchronise
deterministically) and ages the neighbour table on the same cadence.

The beacon advertises the router's tree state (hop count, parent) plus a
bounded slice of its direct neighbour table; receivers fold both into
their own tables (:meth:`~repro.net.routing.tables.NeighborTable.
observe_hello`), which is how two-hop neighbourhoods form without any
routing-specific traffic beyond the HELLOs themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ...phy.frame import Frame
from ...sim.process import Process
from .messages import Hello, hello_payload_bytes

if TYPE_CHECKING:  # pragma: no cover
    from .forwarding import Router

__all__ = ["HelloBeacon"]


class HelloBeacon:
    """Periodic HELLO broadcaster + neighbour-table ager for one router."""

    def __init__(self, router: "Router", rng: np.random.Generator) -> None:
        self.router = router
        self.rng = rng
        self.sent = 0
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None:
            return
        config = self.router.config
        interval = config.hello_interval_s
        jitter = config.hello_jitter

        def _body():
            # Desynchronise first beacons across the network: a full
            # random phase, not just interval jitter.
            yield float(self.rng.uniform(0.0, interval))
            while True:
                self._beacon()
                yield float(
                    interval * self.rng.uniform(1.0 - jitter, 1.0 + jitter)
                )

        self._process = Process(
            self.router.node.sim, _body(),
            name=f"hello.{self.router.name}",
        ).start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    def _beacon(self) -> None:
        router = self.router
        now = router.node.sim.now
        expired = router.neighbors.age(now)
        if expired:
            router.on_neighbors_lost(expired)
        shared = tuple(
            (entry.name, entry.hop_count_to_sink)
            for entry in router.neighbors.shared_slice(
                router.config.shared_neighbors
            )
        )
        hello = Hello(
            sender=router.name,
            hop_count=router.hop_count,
            parent=router.parent,
            shared=shared,
        )
        frame = Frame(
            source=router.name,
            destination=None,  # broadcast
            payload_bytes=hello_payload_bytes(len(shared)),
            created_s=now,
            info=hello,
        )
        self.sent += 1
        router.submit_control(frame)
