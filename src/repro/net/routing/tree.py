"""Cluster-tree formation: the sink-rooted join state machine.

Every router owns one :class:`TreeMembership`.  The sink is born joined
at hop count 0; everyone else starts unjoined and, as soon as the
neighbour table holds a *direct, joined* candidate, runs the handshake:

1. pick the best candidate parent — lowest advertised hop count to the
   sink, ties broken by link quality (RSSI) then name;
2. unicast a :class:`~repro.net.routing.messages.JoinRequest` to it and
   arm a retry timer;
3. the parent (if still joined) records the child in its members table
   and unicasts a :class:`~repro.net.routing.messages.JoinAccept`
   carrying the child's hop count;
4. the child becomes joined on the accept; its next HELLOs advertise
   the new hop count, letting the frontier advance one ring per beacon
   interval.

Losing the parent (aged out of the neighbour table) reverts the node to
unjoined — it keeps its children but stops forwarding upward until it
re-joins through someone else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...phy.frame import Frame
from .messages import (
    JOIN_PAYLOAD_BYTES,
    UNREACHABLE,
    JoinAccept,
    JoinRequest,
)

if TYPE_CHECKING:  # pragma: no cover
    from .forwarding import Router

__all__ = ["TreeMembership"]


class TreeMembership:
    """Join state of one router."""

    def __init__(self, router: "Router", is_sink: bool) -> None:
        self.router = router
        self.is_sink = is_sink
        self.joined = is_sink
        self.hop_count = 0 if is_sink else UNREACHABLE
        self.parent: Optional[str] = None
        #: Simulation time of the *first* successful join (the paper
        #: metric "average time to join the network"); ``None`` until
        #: then.  The sink joins at t = 0 by construction.
        self.join_time_s: Optional[float] = 0.0 if is_sink else None
        self.join_requests_sent = 0
        self._pending_parent: Optional[str] = None
        self._retry_event = None

    # ------------------------------------------------------------------
    def maybe_join(self) -> None:
        """Start (or restart) the handshake if unjoined and a candidate
        parent is visible.  Called after every HELLO fold and on retry
        timer expiry — idempotent while a request is outstanding."""
        if self.joined or self._pending_parent is not None:
            return
        candidate = self.router.neighbors.best_parent(
            min_rssi_dbm=self.router.config.mesh_rssi_floor_dbm
        )
        if candidate is None:
            return
        self._pending_parent = candidate.name
        self.join_requests_sent += 1
        router = self.router
        sim = router.node.sim
        frame = Frame(
            source=router.name,
            destination=candidate.name,
            payload_bytes=JOIN_PAYLOAD_BYTES,
            created_s=sim.now,
            info=JoinRequest(child=router.name, parent=candidate.name),
        )
        router.submit_control(frame)
        self._retry_event = sim.schedule(
            router.config.join_retry_s,
            self._on_retry_timeout,
            tag=f"join_retry.{router.name}",
        )

    def _on_retry_timeout(self) -> None:
        self._retry_event = None
        self._pending_parent = None
        self.maybe_join()

    def _cancel_retry(self) -> None:
        if self._retry_event is not None:
            self.router.node.sim.cancel(self._retry_event)
            self._retry_event = None

    # ------------------------------------------------------------------
    # Message handlers (dispatched by the router)
    # ------------------------------------------------------------------
    def on_join_request(self, request: JoinRequest) -> None:
        """Adopt a child (we are the requested parent)."""
        router = self.router
        if not self.joined:
            return  # lost the tree since advertising; child will retry
        sim = router.node.sim
        router.members.add(request.child, sim.now)
        accept = Frame(
            source=router.name,
            destination=request.child,
            payload_bytes=JOIN_PAYLOAD_BYTES,
            created_s=sim.now,
            info=JoinAccept(
                parent=router.name,
                child=request.child,
                hop_count=self.hop_count + 1,
            ),
        )
        router.submit_control(accept)

    def on_join_accept(self, accept: JoinAccept) -> None:
        if self.joined:
            return  # duplicate accept (MAC retry); already in the tree
        self._cancel_retry()
        self._pending_parent = None
        self.joined = True
        self.parent = accept.parent
        self.hop_count = accept.hop_count
        now = self.router.node.sim.now
        first = self.join_time_s is None
        if first:
            self.join_time_s = now
        self.router.on_joined(parent=accept.parent,
                              hop_count=accept.hop_count, first=first)

    # ------------------------------------------------------------------
    def on_parent_lost(self) -> None:
        """The parent aged out of the neighbour table: back to unjoined."""
        if self.is_sink:
            return
        self.joined = False
        self.parent = None
        self.hop_count = UNREACHABLE
        self._cancel_retry()
        self._pending_parent = None
        self.maybe_join()
