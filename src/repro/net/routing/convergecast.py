"""Convergecast workload: periodic sensor reports toward the sink.

A :class:`ConvergecastSource` sits on one router and originates a
timestamped report every ``interval_s`` (jittered from the node's
dedicated ``routing.report.{node}`` RNG stream).  Reports enter the
routing layer through :meth:`Router.send_report`, so they carry the full
network header — origin, per-source sequence number, creation timestamp,
TTL, path trace — and the delivery-side metrics (end-to-end delay, hop
count, delivery ratio) come for free at the sink.

Reports originated before the node has joined the tree are *not*
withheld: they hit the router, find no route, and are dropped + counted.
The delivery-ratio metric is supposed to see the join transient.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ...sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from .forwarding import Router

__all__ = ["ConvergecastSource"]


class ConvergecastSource:
    """Periodic report generator bound to one router."""

    def __init__(
        self,
        router: "Router",
        rng: np.random.Generator,
        interval_s: float = 1.0,
        jitter: float = 0.2,
        start_delay_s: float = 0.0,
        payload_bytes: Optional[int] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.router = router
        self.rng = rng
        self.interval_s = interval_s
        self.jitter = jitter
        self.start_delay_s = start_delay_s
        self.payload_bytes = payload_bytes
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None:
            return

        def _body():
            # Random phase within one interval desynchronises sources
            # network-wide; start_delay_s lets experiments hold traffic
            # until the tree has (mostly) formed.
            yield self.start_delay_s + float(
                self.rng.uniform(0.0, self.interval_s)
            )
            while True:
                self.router.send_report(payload_bytes=self.payload_bytes)
                yield float(
                    self.interval_s
                    * self.rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
                )

        self._process = Process(
            self.router.node.sim, _body(),
            name=f"convergecast.{self.router.name}",
        ).start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None
