"""repro.net.routing — multi-hop cluster-tree + mesh routing.

The layer above the MAC: neighbour discovery by periodic HELLO beacons
(with table sharing for two-hop reach), sink-rooted cluster-tree
formation, mesh-first forwarding with tree fallback, and convergecast
workloads whose per-packet headers carry creation timestamps, sequence
numbers and route traces — the raw material for end-to-end delay,
delivery-ratio, hop-count and join-time metrics.

Entry point for experiments: :class:`RoutingFabric`, which attaches a
:class:`Router` to every node of a :class:`~repro.net.deployment.
Deployment` and aggregates the statistics.
"""

from .config import RoutingConfig
from .convergecast import ConvergecastSource
from .fabric import RoutingFabric
from .forwarding import Router, RouterStats
from .messages import (
    DATA_HEADER_BYTES,
    JOIN_PAYLOAD_BYTES,
    UNREACHABLE,
    DataHeader,
    Hello,
    JoinAccept,
    JoinRequest,
    hello_payload_bytes,
)
from .tables import (
    MembersTable,
    MemberNetworksTable,
    NeighborEntry,
    NeighborTable,
)
from .tree import TreeMembership

__all__ = [
    "RoutingConfig",
    "ConvergecastSource",
    "RoutingFabric",
    "Router",
    "RouterStats",
    "TreeMembership",
    "Hello",
    "JoinRequest",
    "JoinAccept",
    "DataHeader",
    "UNREACHABLE",
    "hello_payload_bytes",
    "JOIN_PAYLOAD_BYTES",
    "DATA_HEADER_BYTES",
    "NeighborEntry",
    "NeighborTable",
    "MembersTable",
    "MemberNetworksTable",
]
