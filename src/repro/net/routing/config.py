"""Routing-layer configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RoutingConfig"]


@dataclass(frozen=True)
class RoutingConfig:
    """Tunables of discovery, tree formation and forwarding.

    Attributes
    ----------
    hello_interval_s / hello_jitter:
        Base period of the HELLO beacon and the multiplicative jitter
        band: each sleep is drawn uniformly from
        ``interval * [1 - jitter, 1 + jitter]`` (desynchronises beacons
        without a global schedule).
    neighbor_max_age_s:
        A neighbour not heard for this long is dropped from the table
        (and any two-hop entries learned through it die with it).
    shared_neighbors:
        How many direct-neighbour entries each HELLO advertises (the
        table-sharing slice that populates two-hop neighbourhoods).
    join_retry_s:
        An unanswered join request is retried after this long.
    ttl:
        Initial hop budget of every data report; a report whose TTL
        expires is dropped (loop guard of last resort — the seen-set
        catches ordinary duplicates first).
    forward_queue_limit:
        Bound of the per-node forwarding queue that buffers reports
        while the MAC queue is full; overflow is dropped and counted.
    seen_limit:
        Bound of the duplicate-suppression set, in remembered
        ``(origin, seq)`` pairs (oldest forgotten first).
    mesh_rssi_floor_dbm:
        Link-quality gate for mesh-first routes: a direct neighbour
        heard below this RSSI is not used as a mesh shortcut (a fading
        spike can make a far node *audible* without making the link
        usable), and two-hop entries inherit the gate through their
        ``via``.  Tree routes (parent/children) are exempt — they were
        chosen by link quality at join time.
    report_payload_bytes:
        Application payload of one convergecast sensor report, on top
        of the network header.
    """

    hello_interval_s: float = 0.5
    hello_jitter: float = 0.2
    neighbor_max_age_s: float = 2.5
    shared_neighbors: int = 4
    join_retry_s: float = 0.6
    ttl: int = 16
    forward_queue_limit: int = 16
    seen_limit: int = 4096
    mesh_rssi_floor_dbm: float = -88.0
    report_payload_bytes: int = 24

    def __post_init__(self) -> None:
        if self.hello_interval_s <= 0:
            raise ValueError("hello_interval_s must be > 0")
        if not 0.0 <= self.hello_jitter < 1.0:
            raise ValueError("hello_jitter must be in [0, 1)")
        if self.neighbor_max_age_s <= self.hello_interval_s:
            raise ValueError(
                "neighbor_max_age_s must exceed hello_interval_s, or every "
                "table entry expires between beacons"
            )
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")
        if self.forward_queue_limit < 1:
            raise ValueError("forward_queue_limit must be >= 1")
