"""The per-node router: dispatch, forwarding, loop guards, queueing.

One :class:`Router` sits on top of one :class:`~repro.net.node.Node`'s
MAC.  It subscribes to delivered frames, dispatches routing messages by
``Frame.info`` type, and forwards data reports toward their final
destination with the mesh-first/tree-fallback rule:

1. **deliver** — the report is addressed to this node;
2. **mesh** — the neighbour table knows the destination (directly or
   via a shared two-hop entry): unicast to that next hop;
3. **tree, downward** — the member-networks table places the
   destination behind one of our children: unicast to that child;
4. **tree, upward** — we are joined: unicast to our parent;
5. otherwise **drop** (``no_route``).

Loop and duplicate protection: every report carries a TTL (decremented
per hop, dropped at 0) and each router remembers recently seen
``(origin, seq)`` pairs, so MAC-retry duplicates and routing loops die
at first re-appearance.

The MAC transmit queue is short (8 frames); the router adds a bounded
forwarding queue on top — frames that do not fit the MAC are buffered up
to ``forward_queue_limit`` and drained on MAC-idle callbacks; overflow
is dropped and counted (``queue_full``).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from ...phy.errors import FrameReception
from ...phy.frame import Frame
from .config import RoutingConfig
from .discovery import HelloBeacon
from .messages import (
    DATA_HEADER_BYTES,
    DataHeader,
    Hello,
    JoinAccept,
    JoinRequest,
)
from .tables import MembersTable, MemberNetworksTable, NeighborTable
from .tree import TreeMembership

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node
    from .fabric import RoutingFabric

__all__ = ["RouterStats", "Router"]


class RouterStats:
    """Per-router counters (deterministic plain ints/floats)."""

    __slots__ = (
        "originated", "delivered", "forwarded", "duplicates",
        "dropped_ttl", "dropped_no_route", "dropped_queue_full",
        "delays_s", "hop_counts",
    )

    def __init__(self) -> None:
        self.originated = 0
        self.delivered = 0
        self.forwarded = 0
        self.duplicates = 0
        self.dropped_ttl = 0
        self.dropped_no_route = 0
        self.dropped_queue_full = 0
        #: Per delivered report, at the destination: end-to-end delay
        #: and hop count, in arrival order (deterministic).
        self.delays_s: List[float] = []
        self.hop_counts: List[int] = []


class Router:
    """Routing agent bound to one node."""

    def __init__(
        self,
        node: "Node",
        sink: str,
        config: Optional[RoutingConfig] = None,
        fabric: Optional["RoutingFabric"] = None,
    ) -> None:
        self.node = node
        self.name = node.name
        self.sink = sink
        self.config = config if config is not None else RoutingConfig()
        self.fabric = fabric
        self.neighbors = NeighborTable(
            owner=self.name, max_age_s=self.config.neighbor_max_age_s
        )
        self.members = MembersTable()
        self.member_networks = MemberNetworksTable()
        self.tree = TreeMembership(self, is_sink=(self.name == sink))
        self.stats = RouterStats()
        self._seq = 0
        self._seen: "OrderedDict[tuple, None]" = OrderedDict()
        self._pending: Deque[Frame] = deque()
        #: Per-origin route trace of the last report delivered *here*:
        #: the full transmit path, origin first (packet tracing).
        self.last_paths: Dict[str, tuple] = {}
        self._beacon: Optional[HelloBeacon] = None
        node.mac.add_receive_listener(self._on_frame)
        node.mac.add_idle_listener(self._drain_pending)

    # ------------------------------------------------------------------
    # Tree state passthroughs
    # ------------------------------------------------------------------
    @property
    def joined(self) -> bool:
        return self.tree.joined

    @property
    def hop_count(self) -> int:
        return self.tree.hop_count

    @property
    def parent(self) -> Optional[str]:
        return self.tree.parent

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, rng) -> None:
        """Start neighbour discovery (``rng`` = this router's hello
        stream, e.g. ``RngStreams.stream(f"routing.hello.{name}")``)."""
        if self._beacon is None:
            self._beacon = HelloBeacon(self, rng)
        self._beacon.start()

    def stop(self) -> None:
        if self._beacon is not None:
            self._beacon.stop()

    # ------------------------------------------------------------------
    # Originating traffic
    # ------------------------------------------------------------------
    def send_report(
        self,
        destination: Optional[str] = None,
        payload_bytes: Optional[int] = None,
    ) -> DataHeader:
        """Originate one application report (default: toward the sink).

        The report is routed immediately; if the router has no route yet
        (e.g. not joined), it is dropped and counted — an unjoined node's
        reports are genuinely lost, which is what the delivery-ratio
        metric must see.
        """
        sim = self.node.sim
        self._seq += 1
        self.stats.originated += 1
        header = DataHeader(
            origin=self.name,
            destination=destination if destination is not None else self.sink,
            seq=self._seq,
            ttl=self.config.ttl,
            created_s=sim.now,
        )
        if sim.obs is not None:
            sim.obs.on_route_created(self.name)
        if self.fabric is not None:
            self.fabric.on_created(self)
        payload = (
            payload_bytes if payload_bytes is not None
            else self.config.report_payload_bytes
        )
        self._route(header, payload)
        return header

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_frame(self, reception: FrameReception) -> None:
        info = reception.frame.info
        if isinstance(info, Hello):
            self._on_hello(info, reception)
        elif isinstance(info, DataHeader):
            self._on_data(info, reception)
        elif isinstance(info, JoinRequest):
            self.tree.on_join_request(info)
        elif isinstance(info, JoinAccept):
            self.tree.on_join_accept(info)

    def _on_hello(self, hello: Hello, reception: FrameReception) -> None:
        now = self.node.sim.now
        self.neighbors.observe_hello(hello, reception.rssi_dbm, now)
        self.tree.maybe_join()

    def _on_data(self, header: DataHeader, reception: FrameReception) -> None:
        key = (header.origin, header.seq)
        if key in self._seen:
            self.stats.duplicates += 1
            return
        self._remember(key)
        previous_hop = reception.frame.source
        # Upward traffic teaches downward routes: the origin (and every
        # intermediate node on the recorded path) lies behind the hop
        # this report arrived from.
        if previous_hop != header.origin:
            self.member_networks.learn(header.origin, previous_hop)
        for hop in header.path:
            if hop not in (self.name, previous_hop):
                self.member_networks.learn(hop, previous_hop)
        if header.destination == self.name:
            self._deliver(header)
            return
        if header.ttl <= 0:
            self.stats.dropped_ttl += 1
            self._drop_obs("ttl")
            return
        self._route(header, reception.frame.payload_bytes - DATA_HEADER_BYTES,
                    forwarding=True)

    def _deliver(self, header: DataHeader) -> None:
        sim = self.node.sim
        delay = sim.now - header.created_s
        hops = header.hops
        self.stats.delivered += 1
        self.stats.delays_s.append(delay)
        self.stats.hop_counts.append(hops)
        self.last_paths[header.origin] = header.path + (self.name,)
        if sim.obs is not None:
            sim.obs.on_route_delivered(
                origin=header.origin,
                sink=self.name,
                created_s=header.created_s,
                now=sim.now,
                hops=hops,
            )
        if self.fabric is not None:
            self.fabric.on_delivered(self, header, delay)

    # ------------------------------------------------------------------
    # Forwarding decision
    # ------------------------------------------------------------------
    def next_hop(self, destination: str) -> Optional[str]:
        """Mesh-first / tree-fallback next hop (``None`` = no route)."""
        hop = self.neighbors.route_to(
            destination, min_rssi_dbm=self.config.mesh_rssi_floor_dbm
        )
        if hop is not None:
            return hop
        hop = self.member_networks.route_to(destination)
        if hop is not None and hop in self.neighbors:
            return hop
        if destination in self.members:
            return destination
        if self.tree.joined and self.tree.parent is not None:
            return self.tree.parent
        return None

    def _route(self, header: DataHeader, payload_bytes: int,
               forwarding: bool = False) -> None:
        hop = self.next_hop(header.destination)
        if hop is None:
            self.stats.dropped_no_route += 1
            self._drop_obs("no_route")
            return
        out = header.forwarded_by(self.name)
        frame = Frame(
            source=self.name,
            destination=hop,
            payload_bytes=max(payload_bytes, 0) + DATA_HEADER_BYTES,
            source_seq=header.seq,
            created_s=header.created_s,
            info=out,
        )
        if forwarding:
            self.stats.forwarded += 1
            sim = self.node.sim
            if sim.obs is not None:
                sim.obs.on_route_forwarded(self.name)
        self._submit(frame)

    # ------------------------------------------------------------------
    # Queueing toward the MAC
    # ------------------------------------------------------------------
    def submit_control(self, frame: Frame) -> None:
        """Hand a control frame (HELLO/join) to the MAC.

        Control frames bypass the forwarding queue — discovery must keep
        breathing under data load — but a full MAC queue still costs
        them: a lost beacon is simply lost, like on real hardware.
        """
        self.node.mac.send(frame)

    def _submit(self, frame: Frame) -> None:
        if self._pending:
            self._enqueue(frame)
            return
        if not self.node.mac.send(frame):
            self._enqueue(frame)

    def _enqueue(self, frame: Frame) -> None:
        if len(self._pending) >= self.config.forward_queue_limit:
            self.stats.dropped_queue_full += 1
            self._drop_obs("queue_full")
            return
        self._pending.append(frame)

    def _drain_pending(self) -> None:
        while self._pending:
            frame = self._pending[0]
            if not self.node.mac.send(frame):
                return
            self._pending.popleft()

    @property
    def pending_frames(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Callbacks from tree / discovery
    # ------------------------------------------------------------------
    def on_joined(self, parent: str, hop_count: int, first: bool) -> None:
        sim = self.node.sim
        if first and sim.obs is not None:
            obs_join_time = self.tree.join_time_s
            assert obs_join_time is not None
            sim.obs.on_route_joined(
                self.name, obs_join_time, parent, hop_count
            )
        if self.fabric is not None:
            self.fabric.on_joined(self, first=first)

    def on_neighbors_lost(self, names: List[str]) -> None:
        for name in names:
            if name in self.members:
                self.members.remove(name)
            self.member_networks.forget_child(name)
        if self.tree.parent is not None and self.tree.parent in names:
            self.tree.on_parent_lost()

    # ------------------------------------------------------------------
    def _remember(self, key: tuple) -> None:
        seen = self._seen
        seen[key] = None
        if len(seen) > self.config.seen_limit:
            seen.popitem(last=False)

    def _drop_obs(self, reason: str) -> None:
        sim = self.node.sim
        if sim.obs is not None:
            sim.obs.on_route_dropped(self.name, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"hop={self.hop_count}" if self.joined else "unjoined"
        return (f"<Router {self.name} sink={self.sink} {state} "
                f"neighbors={len(self.neighbors)}>")
