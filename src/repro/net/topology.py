"""Topology generation: node placement and link pairing.

The paper evaluates three network configurations (Section VI-B4, Figs.
22-24):

- **Case I** — all networks in one interfering region: every node close to
  every other, strong mutual interference
  (:func:`one_region_topology`).
- **Case II** — networks separated into per-channel clusters (office rooms):
  weak inter-channel interference (:func:`separated_clusters_topology`).
- **Case III** — all nodes randomly deployed over a large region: links of
  very different quality, including weak co-channel links — the
  configuration that exposes DCN's conservative-threshold weakness
  (:func:`random_topology`).

Each generator returns a list of :class:`NetworkSpec` — pure data that the
deployment layer turns into simulated nodes.  A "network" follows the
paper's definition: the group of nodes sharing one channel.  Networks have
4 nodes by default ("each network consists of 4 MicaZ nodes"), organised as
2 unidirectional links (2 senders + 2 receivers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.propagation import Position
from ..phy.spectrum import ChannelPlan

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "NetworkSpec",
    "PowerAssignment",
    "fixed_power",
    "random_power",
    "one_region_topology",
    "separated_clusters_topology",
    "random_topology",
    "scale_topology",
    "grid_topology",
    "sink_name",
]


@dataclass(frozen=True)
class NodeSpec:
    """Placement and power for one node-to-be."""

    name: str
    position: Position
    tx_power_dbm: float


@dataclass(frozen=True)
class LinkSpec:
    """A unidirectional traffic flow between two nodes of a network."""

    sender: str
    receiver: str


@dataclass(frozen=True)
class NetworkSpec:
    """One channel-sharing group: the paper's N_i."""

    label: str
    channel_mhz: float
    nodes: Tuple[NodeSpec, ...] = field(default_factory=tuple)
    links: Tuple[LinkSpec, ...] = field(default_factory=tuple)

    @property
    def senders(self) -> List[str]:
        return [link.sender for link in self.links]

    @property
    def receivers(self) -> List[str]:
        return [link.receiver for link in self.links]


# ---------------------------------------------------------------------------
# Power assignment policies
# ---------------------------------------------------------------------------
PowerAssignment = Callable[[np.random.Generator], float]


def fixed_power(power_dbm: float) -> PowerAssignment:
    """Every node transmits at the same power."""

    def _assign(_: np.random.Generator) -> float:
        return power_dbm

    return _assign


def random_power(low_dbm: float = -22.0, high_dbm: float = 0.0) -> PowerAssignment:
    """Per-node uniform power — the paper's "[-22dBm, 0dBm] at random"."""
    if high_dbm < low_dbm:
        raise ValueError("need high_dbm >= low_dbm")

    def _assign(rng: np.random.Generator) -> float:
        return float(rng.uniform(low_dbm, high_dbm))

    return _assign


# ---------------------------------------------------------------------------
# Placement helpers
# ---------------------------------------------------------------------------
def _place_link(
    rng: np.random.Generator,
    center: Position,
    spread_m: float,
    link_distance_m: float,
) -> Tuple[Position, Position]:
    """Sender at a jittered point near ``center``, receiver
    ``link_distance_m`` away in a random direction."""
    sx = center[0] + float(rng.uniform(-spread_m, spread_m))
    sy = center[1] + float(rng.uniform(-spread_m, spread_m))
    theta = float(rng.uniform(0.0, 2.0 * math.pi))
    rx = sx + link_distance_m * math.cos(theta)
    ry = sy + link_distance_m * math.sin(theta)
    return (sx, sy), (rx, ry)


def _build_network(
    index: int,
    channel_mhz: float,
    link_positions: Sequence[Tuple[Position, Position]],
    rng: np.random.Generator,
    power: PowerAssignment,
) -> NetworkSpec:
    label = f"N{index}"
    nodes: List[NodeSpec] = []
    links: List[LinkSpec] = []
    for li, (sender_pos, receiver_pos) in enumerate(link_positions):
        sender = f"{label}.s{li}"
        receiver = f"{label}.r{li}"
        nodes.append(NodeSpec(sender, sender_pos, power(rng)))
        nodes.append(NodeSpec(receiver, receiver_pos, power(rng)))
        links.append(LinkSpec(sender, receiver))
    return NetworkSpec(label, channel_mhz, tuple(nodes), tuple(links))


# ---------------------------------------------------------------------------
# The three paper configurations
# ---------------------------------------------------------------------------
def one_region_topology(
    plan: ChannelPlan,
    rng: np.random.Generator,
    links_per_network: int = 2,
    region_radius_m: float = 2.0,
    link_distance_m: float = 1.5,
    power: Optional[PowerAssignment] = None,
) -> List[NetworkSpec]:
    """Case I: every network inside one small interfering region."""
    power = power if power is not None else fixed_power(0.0)
    networks = []
    for index, channel in enumerate(plan.centers_mhz):
        positions = [
            _place_link(rng, (0.0, 0.0), region_radius_m, link_distance_m)
            for _ in range(links_per_network)
        ]
        networks.append(_build_network(index, channel, positions, rng, power))
    return networks


def clustered_region_topology(
    plan: ChannelPlan,
    rng: np.random.Generator,
    links_per_network: int = 2,
    region_radius_m: float = 5.0,
    cluster_radius_m: float = 1.0,
    link_distance_m: float = 1.2,
    power: Optional[PowerAssignment] = None,
) -> List[NetworkSpec]:
    """Networks co-located per channel inside one shared interfering region.

    Each network's links sit together in a small cluster (a network is one
    application's nodes, deployed as a group), while the clusters themselves
    are scattered across a single room — so every network hears every other,
    but a node's *co-channel* neighbours are always nearby.  This is the
    regime of the paper's main testbed (Figs. 13-21): DCN's threshold,
    bounded by the weakest co-channel RSSI, stays well above the
    inter-channel leakage arriving from other clusters.
    """
    power = power if power is not None else fixed_power(0.0)
    networks = []
    for index, channel in enumerate(plan.centers_mhz):
        radius = float(rng.uniform(0.0, region_radius_m))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        center = (radius * math.cos(angle), radius * math.sin(angle))
        positions = [
            _place_link(rng, center, cluster_radius_m, link_distance_m)
            for _ in range(links_per_network)
        ]
        networks.append(_build_network(index, channel, positions, rng, power))
    return networks


def separated_clusters_topology(
    plan: ChannelPlan,
    rng: np.random.Generator,
    links_per_network: int = 2,
    cluster_spacing_m: float = 3.0,
    cluster_radius_m: float = 0.8,
    link_distance_m: float = 1.0,
    power: Optional[PowerAssignment] = None,
) -> List[NetworkSpec]:
    """Case II: one tight cluster per network ("one office room each").

    Clusters sit on a circle of radius chosen so neighbouring clusters are
    ``cluster_spacing_m`` apart.
    """
    power = power if power is not None else fixed_power(0.0)
    count = plan.num_channels
    if count == 1:
        centers = [(0.0, 0.0)]
    else:
        ring_radius = cluster_spacing_m / (2.0 * math.sin(math.pi / count))
        centers = [
            (
                ring_radius * math.cos(2.0 * math.pi * i / count),
                ring_radius * math.sin(2.0 * math.pi * i / count),
            )
            for i in range(count)
        ]
    networks = []
    for index, channel in enumerate(plan.centers_mhz):
        positions = [
            _place_link(rng, centers[index], cluster_radius_m, link_distance_m)
            for _ in range(links_per_network)
        ]
        networks.append(_build_network(index, channel, positions, rng, power))
    return networks


def random_topology(
    plan: ChannelPlan,
    rng: np.random.Generator,
    links_per_network: int = 2,
    region_size_m: float = 8.0,
    power: Optional[PowerAssignment] = None,
    pair_nearest: bool = True,
) -> List[NetworkSpec]:
    """Case III: all nodes uniform over a large square region.

    With ``pair_nearest`` (the realistic default — WSN protocols route to
    nearby neighbours) each network's nodes are dropped at random and then
    greedily paired closest-first, so *links* stay usable while the
    network's nodes as a group are spread across the region.  The network's
    two links can land far apart, which makes overheard co-channel RSSI
    small — exactly the property the paper identifies as DCN's Case III
    weakness (a weak co-channel record pins the CCA threshold low).

    With ``pair_nearest=False`` senders and receivers are paired at random,
    so link distances range up to the region diagonal.
    """
    power = power if power is not None else fixed_power(0.0)

    def _uniform_point() -> Position:
        return (
            float(rng.uniform(0.0, region_size_m)),
            float(rng.uniform(0.0, region_size_m)),
        )

    networks = []
    for index, channel in enumerate(plan.centers_mhz):
        points = [_uniform_point() for _ in range(2 * links_per_network)]
        if pair_nearest:
            positions = _pair_closest_first(points)
        else:
            positions = [
                (points[2 * i], points[2 * i + 1])
                for i in range(links_per_network)
            ]
        networks.append(_build_network(index, channel, positions, rng, power))
    return networks


def scale_topology(
    plan: ChannelPlan,
    rng: np.random.Generator,
    n_motes: int,
    active_links_per_network: int = 1,
    link_distance_m: float = 1.5,
    area_m2_per_mote: float = 20.0,
    power: Optional[PowerAssignment] = None,
) -> List[NetworkSpec]:
    """Synthetic dense scene for kernel benchmarking and profiling.

    ``n_motes`` motes are split evenly over the plan's channels and paired
    into links scattered uniformly over a square whose area grows with the
    mote count (constant spatial density, ``area_m2_per_mote`` each), so a
    10x bigger scene stresses the fan-out path 10x harder instead of just
    packing the same room tighter.  Only the first
    ``active_links_per_network`` pairs per network carry traffic; the rest
    are idle listeners that still populate every transmitter's audible set
    — exactly the population the vectorized medium batch-evaluates.

    This is *not* a paper configuration: it exists so ``perf profile
    --scene N`` and the ``fanout_1k``/``mini_run_5k`` benches can build an
    arbitrarily large world in one call.
    """
    if n_motes < 2 * len(plan.centers_mhz):
        raise ValueError(
            f"need at least {2 * len(plan.centers_mhz)} motes "
            f"(2 per channel), got {n_motes}"
        )
    power = power if power is not None else fixed_power(0.0)
    channels = plan.centers_mhz
    pairs_per_network = n_motes // (2 * len(channels))
    side_m = math.sqrt(n_motes * area_m2_per_mote)
    networks: List[NetworkSpec] = []
    for index, channel in enumerate(channels):
        label = f"N{index}"
        nodes: List[NodeSpec] = []
        links: List[LinkSpec] = []
        for li in range(pairs_per_network):
            center = (
                float(rng.uniform(0.0, side_m)),
                float(rng.uniform(0.0, side_m)),
            )
            sender_pos, receiver_pos = _place_link(
                rng, center, 0.5, link_distance_m
            )
            sender = f"{label}.s{li}"
            receiver = f"{label}.r{li}"
            nodes.append(NodeSpec(sender, sender_pos, power(rng)))
            nodes.append(NodeSpec(receiver, receiver_pos, power(rng)))
            if li < active_links_per_network:
                links.append(LinkSpec(sender, receiver))
        networks.append(NetworkSpec(label, channel, tuple(nodes), tuple(links)))
    return networks


def sink_name(label: str) -> str:
    """Canonical name of a grid network's sink node."""
    return f"{label}.sink"


def grid_topology(
    rows: int,
    cols: int,
    pitch_m: float,
    channel_mhz: float,
    label: str = "N0",
    origin: Position = (0.0, 0.0),
    tx_power_dbm: float = 0.0,
    jitter_m: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> NetworkSpec:
    """A reproducible multi-hop scene: ``rows x cols`` motes on a grid.

    The sink sits at the ``origin`` corner (grid index ``(0, 0)``) and is
    named :func:`sink_name` (``"{label}.sink"``); every other mote is
    ``"{label}.g{r}_{c}"`` at ``origin + (c * pitch_m, r * pitch_m)``.
    With the default calibration (log-distance, exponent 3, 0 dBm) a
    pitch of ~30 m makes only grid neighbours reliable links, so the far
    corner of a 4x4 grid is several radio hops from the sink — the
    multi-hop regime the routing layer is evaluated in.

    ``jitter_m`` perturbs every non-sink position uniformly in
    ``[-jitter_m, +jitter_m]`` per axis (deterministic under ``rng``),
    modelling imperfect hand placement.  The minimum pairwise distance is
    then bounded below by ``pitch_m - 2 * sqrt(2) * jitter_m``.

    No :class:`LinkSpec` entries are generated: traffic on a grid is
    routed hop-by-hop by :mod:`repro.net.routing`, not delivered over
    fixed single-hop links.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid needs rows, cols >= 1; got {rows}x{cols}")
    if pitch_m <= 0:
        raise ValueError(f"pitch_m must be > 0, got {pitch_m}")
    if jitter_m < 0:
        raise ValueError(f"jitter_m must be >= 0, got {jitter_m}")
    if jitter_m > 0 and rng is None:
        raise ValueError("jitter_m > 0 requires an rng")
    nodes: List[NodeSpec] = []
    for r in range(rows):
        for c in range(cols):
            x = origin[0] + c * pitch_m
            y = origin[1] + r * pitch_m
            if r == 0 and c == 0:
                nodes.append(NodeSpec(sink_name(label), (x, y), tx_power_dbm))
                continue
            if jitter_m > 0:
                assert rng is not None
                x += float(rng.uniform(-jitter_m, jitter_m))
                y += float(rng.uniform(-jitter_m, jitter_m))
            nodes.append(
                NodeSpec(f"{label}.g{r}_{c}", (x, y), tx_power_dbm)
            )
    return NetworkSpec(label, channel_mhz, tuple(nodes), ())


def _pair_closest_first(
    points: List[Position],
) -> List[Tuple[Position, Position]]:
    """Greedy matching: repeatedly pair the two closest remaining points."""
    remaining = list(points)
    pairs: List[Tuple[Position, Position]] = []
    while len(remaining) >= 2:
        best = None
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                d = math.dist(remaining[i], remaining[j])
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        _, i, j = best
        pairs.append((remaining[i], remaining[j]))
        for index in sorted((i, j), reverse=True):
            remaining.pop(index)
    return pairs
