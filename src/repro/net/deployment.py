"""Deployment: turn topology specs into a running simulated world.

A :class:`Deployment` owns the simulator, the medium, every node and every
traffic source.  CCA policies are created per node through a factory so
experiments can give different networks different schemes (e.g. "DCN only
on N0", Fig. 14/15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..mac.cca import CcaPolicy, FixedCcaThreshold
from ..mac.params import MacParams
from ..phy.fading import FadingModel, LogNormalFading
from ..phy.mask import SpectralMask, default_mask
from ..phy.propagation import LogDistancePathLoss, PathLossModel
from ..phy.radio import RadioConfig
from ..sim.rng import RngStreams
from ..sim.simulator import Simulator
from ..sim.trace import Trace
from .node import Node
from .topology import NetworkSpec
from .traffic import DEFAULT_PAYLOAD_BYTES, SaturatedSource, TrafficSource

__all__ = ["PolicyFactory", "zigbee_policy_factory", "Network", "Deployment"]

#: Given (network_label, node_name) return the CCA policy for that node.
PolicyFactory = Callable[[str, str], CcaPolicy]


def zigbee_policy_factory(threshold_dbm: float = -77.0) -> PolicyFactory:
    """Every node uses the fixed default threshold (the ZigBee design)."""

    def _factory(_label: str, _node: str) -> CcaPolicy:
        return FixedCcaThreshold(threshold_dbm)

    return _factory


@dataclass
class Network:
    """Runtime view of one channel-sharing group."""

    spec: NetworkSpec
    nodes: List[Node] = field(default_factory=list)
    sources: List[TrafficSource] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def channel_mhz(self) -> float:
        return self.spec.channel_mhz

    def receivers(self) -> List[Node]:
        names = set(self.spec.receivers)
        return [node for node in self.nodes if node.name in names]

    def senders(self) -> List[Node]:
        names = set(self.spec.senders)
        return [node for node in self.nodes if node.name in names]


class Deployment:
    """A complete simulated testbed.

    Parameters
    ----------
    specs:
        Network specifications (from :mod:`repro.net.topology`).
    seed:
        Root seed for all randomness in the run.
    policy_factory:
        CCA policy per (network label, node name); defaults to the fixed
        ZigBee threshold everywhere.
    path_loss / fading / mask:
        Channel models; defaults are the paper-calibrated ones.
    mac_params / payload_bytes:
        MAC configuration and application payload for traffic sources.
    saturate_senders:
        When True (default) every link sender gets a
        :class:`~repro.net.traffic.SaturatedSource` started at t = 0.
    link_cache:
        Fan-out strategy for the medium: ``True`` uses the audible-set
        cache, ``False`` the brute-force reference scan.  ``None`` (the
        default) means "cache, unless an active
        :class:`~repro.check.runtime.CheckSession` asks for the
        reference path".
    vectorized:
        Struct-of-arrays batched fan-out (see
        :class:`~repro.phy.vectorized.VectorizedLinkCache`).  ``None``
        (the default) enables it whenever the link cache is active;
        ``False`` forces the scalar cache.
    band_sharding:
        Opt-in cross-band fan-out culling for large multi-band scenes
        (approximate; see ``Medium``).  Default off.  An active
        non-reference :class:`~repro.check.runtime.CheckSession` with
        ``band_sharding=True`` turns it on (so ``check diff`` can gate
        the sharded configuration).
    sharded_scheduler:
        Band-partitioned event scheduling + batched accumulator updates
        (bit-exact; see ``Medium``).  ``None`` (the default) follows the
        medium's own default — on whenever the vectorized cache is
        active, hence automatically *off* on the reference leg.
    obs:
        Optional :class:`~repro.obs.recorder.Observability` telemetry
        recorder handed to the simulator.  ``None`` (the default) means
        "no telemetry, unless an active :class:`~repro.obs.runtime.
        ObsSession` supplies a recorder".

    Check-session integration
    -------------------------
    Exhibits construct their deployments internally, so the differential
    oracle (``python -m repro check diff``) cannot thread configuration
    through arguments.  Instead, when a :class:`repro.check.runtime.
    CheckSession` is active, every deployment built inside it

    - attaches a :class:`~repro.sim.trace.Trace` (when the session
      captures traces) and registers it with the session,
    - switches the medium to the reference path
      (``link_cache=False, reference_accumulators=True``) when the
      session is a *reference* session, and
    - installs the session's :class:`~repro.check.invariants.
      InvariantChecker` on the simulator.

    Explicit constructor arguments always win over the ambient session.
    """

    def __init__(
        self,
        specs: Sequence[NetworkSpec],
        seed: int = 0,
        policy_factory: Optional[PolicyFactory] = None,
        path_loss: Optional[PathLossModel] = None,
        fading: Optional[FadingModel] = None,
        mask: Optional[SpectralMask] = None,
        mac_params: Optional[MacParams] = None,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        saturate_senders: bool = True,
        radio_config: Optional[RadioConfig] = None,
        trace: Optional[Trace] = None,
        link_cache: Optional[bool] = None,
        vectorized: Optional[bool] = None,
        band_sharding: bool = False,
        sharded_scheduler: Optional[bool] = None,
        obs=None,
    ) -> None:
        from ..check.runtime import active_session
        from ..obs.runtime import active_obs_session
        from ..phy.medium import Medium  # local import to avoid cycles

        if obs is None:
            obs_session = active_obs_session()
            if obs_session is not None:
                obs = obs_session.make_observability()
        session = active_session()
        checks = None
        reference_accumulators = False
        if session is not None:
            if trace is None and session.capture_traces:
                trace = Trace(enabled=True)
            if session.capture_traces and trace is not None:
                session.attach_trace(trace)
            if link_cache is None:
                link_cache = not session.reference
            reference_accumulators = session.reference
            checks = session.checker
            if session.band_sharding and not session.reference:
                band_sharding = True
        if link_cache is None:
            link_cache = True
        if vectorized is None:
            vectorized = link_cache

        self.sim = Simulator(trace=trace, checks=checks, obs=obs)
        if trace is not None:
            trace.bind_clock(lambda: self.sim.now)
        self.rng = RngStreams(seed)
        self.path_loss = path_loss if path_loss is not None else LogDistancePathLoss()
        self.fading = fading if fading is not None else LogNormalFading(sigma_db=4.0)
        self.mask = mask if mask is not None else default_mask()
        self.mac_params = mac_params if mac_params is not None else MacParams()
        self.payload_bytes = payload_bytes
        policy_factory = (
            policy_factory if policy_factory is not None else zigbee_policy_factory()
        )
        self.medium = Medium(
            sim=self.sim,
            path_loss=self.path_loss,
            fading=self.fading,
            rng=self.rng,
            link_cache=link_cache,
            reference_accumulators=reference_accumulators,
            vectorized=vectorized,
            band_sharding=band_sharding,
            sharded_scheduler=sharded_scheduler,
        )
        self.networks: List[Network] = []
        self.nodes: Dict[str, Node] = {}
        for spec in specs:
            network = Network(spec=spec)
            for node_spec in spec.nodes:
                node = Node(
                    sim=self.sim,
                    medium=self.medium,
                    rng=self.rng,
                    name=node_spec.name,
                    position=node_spec.position,
                    channel_mhz=spec.channel_mhz,
                    tx_power_dbm=node_spec.tx_power_dbm,
                    mac_params=self.mac_params,
                    cca_policy=policy_factory(spec.label, node_spec.name),
                    radio_config=radio_config,
                    mask=self.mask,
                )
                network.nodes.append(node)
                if node.name in self.nodes:
                    raise ValueError(f"duplicate node name {node.name!r}")
                self.nodes[node.name] = node
            if saturate_senders:
                for link in spec.links:
                    source = SaturatedSource(
                        node=self.nodes[link.sender],
                        destination=link.receiver,
                        payload_bytes=payload_bytes,
                    )
                    network.sources.append(source)
            self.networks.append(network)

    # ------------------------------------------------------------------
    def start_traffic(self) -> None:
        """Start every attached traffic source (idempotent per source)."""
        for network in self.networks:
            for source in network.sources:
                source.start()

    def stop_traffic(self) -> None:
        for network in self.networks:
            for source in network.sources:
                source.stop()

    def quiesce(self) -> None:
        """Stop traffic and detach every CCA policy's self-scheduled timers.

        After this, no component re-arms periodic events, so
        ``sim.run_until_idle()`` terminates once in-flight frames drain —
        required for DCN deployments, whose Case-II timer otherwise
        re-arms forever.
        """
        self.stop_traffic()
        for node in self.nodes.values():
            node.mac.cca_policy.detach()

    def network(self, label: str) -> Network:
        for network in self.networks:
            if network.label == label:
                return network
        raise KeyError(f"no network labelled {label!r}")

    def node(self, name: str) -> Node:
        return self.nodes[name]
