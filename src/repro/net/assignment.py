"""Channel assignment: mapping networks onto a channel plan.

The multi-channel MAC literature the paper builds on (TMCP, MMSN, TMMAC)
assigns *orthogonal* channels to network partitions and runs out of
channels quickly; the paper's position is that more, non-orthogonal
channels plus DCN beat fewer orthogonal ones.  This module provides both
sides of that comparison as reusable algorithms:

- :func:`orthogonal_assignment` — the TMCP-style baseline: only fully
  orthogonal channels are used; when networks outnumber channels they
  share (round-robin), i.e. co-channel contention instead of
  inter-channel leakage.
- :func:`min_interference_assignment` — interference-aware greedy
  assignment over an arbitrary (e.g. non-orthogonal) channel plan: heavy
  interferers get spectrally distant channels.
- :func:`assignment_cost` — the objective both are judged by: total
  leakage power across network pairs under a spectral mask.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..phy.mask import SpectralMask, default_cca_mask
from ..phy.propagation import PathLossModel
from ..sim.units import dbm_to_mw
from .topology import NetworkSpec

__all__ = [
    "interference_matrix",
    "orthogonal_assignment",
    "min_interference_assignment",
    "assignment_cost",
    "reassign",
]


def interference_matrix(
    specs: Sequence[NetworkSpec], path_loss: PathLossModel
) -> List[List[float]]:
    """Pairwise coupling between networks, in mW of received power.

    Entry [i][j] sums, over every (sender of i, node of j) pair, the mean
    received power — a frequency-independent measure of how much network i
    is heard inside network j.
    """
    n = len(specs)
    matrix = [[0.0] * n for _ in range(n)]
    for i, src in enumerate(specs):
        sender_names = set(src.senders)
        senders = [node for node in src.nodes if node.name in sender_names]
        for j, dst in enumerate(specs):
            if i == j:
                continue
            total = 0.0
            for sender in senders:
                for node in dst.nodes:
                    rss = path_loss.received_power_dbm(
                        sender.tx_power_dbm, sender.position, node.position
                    )
                    total += dbm_to_mw(rss)
            matrix[i][j] = total
    return matrix


def assignment_cost(
    specs: Sequence[NetworkSpec],
    channels: Sequence[float],
    matrix: Sequence[Sequence[float]],
    mask: SpectralMask | None = None,
) -> float:
    """Total cross-network leakage power (mW) under ``channels``.

    Co-channel pairs count at full coupling (they will contend rather than
    corrupt, but sharing still halves their air time, so the objective
    charges them fully).
    """
    mask = mask if mask is not None else default_cca_mask()
    total = 0.0
    for i in range(len(specs)):
        for j in range(len(specs)):
            if i == j:
                continue
            offset = channels[i] - channels[j]
            attenuation = mask.leakage_db(offset) if offset != 0.0 else 0.0
            total += matrix[i][j] * (10.0 ** (-attenuation / 10.0))
    return total


def orthogonal_assignment(
    specs: Sequence[NetworkSpec],
    band_low_mhz: float,
    band_high_mhz: float,
    orthogonal_spacing_mhz: float = 9.0,
) -> List[float]:
    """TMCP-style: only orthogonal channels; round-robin when they run out."""
    count = int((band_high_mhz - band_low_mhz) // orthogonal_spacing_mhz) + 1
    channels = [
        band_low_mhz + orthogonal_spacing_mhz * k for k in range(count)
    ]
    return [channels[i % len(channels)] for i in range(len(specs))]


def min_interference_assignment(
    specs: Sequence[NetworkSpec],
    channels: Sequence[float],
    path_loss: PathLossModel,
    mask: SpectralMask | None = None,
) -> List[float]:
    """Greedy interference-aware assignment over an arbitrary plan.

    Networks are processed in decreasing total-coupling order; each takes
    the channel minimising its leakage to/from already-assigned networks.
    Channels are reused only when networks outnumber them.
    """
    if not channels:
        raise ValueError("need at least one channel")
    mask = mask if mask is not None else default_cca_mask()
    matrix = interference_matrix(specs, path_loss)
    n = len(specs)
    order = sorted(
        range(n), key=lambda i: -(sum(matrix[i]) + sum(row[i] for row in matrix))
    )
    assigned: Dict[int, float] = {}
    usage = {channel: 0 for channel in channels}
    max_reuse = math.ceil(n / len(channels))

    def pair_cost(i: int, channel: float) -> float:
        cost = 0.0
        for j, other_channel in assigned.items():
            offset = channel - other_channel
            attenuation = mask.leakage_db(offset) if offset != 0.0 else 0.0
            coupling = matrix[i][j] + matrix[j][i]
            cost += coupling * (10.0 ** (-attenuation / 10.0))
        return cost

    for i in order:
        candidates = [c for c in channels if usage[c] < max_reuse]
        best = min(candidates, key=lambda c: (pair_cost(i, c), c))
        assigned[i] = best
        usage[best] += 1
    return [assigned[i] for i in range(n)]


def reassign(
    specs: Sequence[NetworkSpec], channels: Sequence[float]
) -> List[NetworkSpec]:
    """Copy the specs with new channel centres (same nodes/links)."""
    if len(channels) != len(specs):
        raise ValueError("one channel per network required")
    return [
        NetworkSpec(spec.label, channel, spec.nodes, spec.links)
        for spec, channel in zip(specs, channels)
    ]
