"""Traffic sources.

Three kinds, matching how the paper exercises its testbed:

- :class:`SaturatedSource` — "all the nodes are sending packets at the
  maximum data rate": keeps the MAC queue non-empty forever.
- :class:`AttackerSource` — the Section III-B collider: fixed-interval
  injection (1 packet every 3 ms) with carrier sensing bypassed by MAC
  configuration.
- :class:`PoissonSource` — open-loop random traffic for non-saturated
  scenarios and tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..phy.frame import Frame
from ..sim.process import Process
from ..sim.units import MILLISECOND
from .node import Node

__all__ = [
    "DEFAULT_PAYLOAD_BYTES",
    "TrafficSource",
    "SaturatedSource",
    "AttackerSource",
    "PoissonSource",
]

#: Default application payload.  Together with MAC/PHY overheads this gives
#: a ~2.5 ms frame, putting a saturated channel in the paper's 250-300
#: packets/s regime.
DEFAULT_PAYLOAD_BYTES = 60


class TrafficSource:
    """Base: a generator of frames from ``node`` to ``destination``.

    Every frame a source creates is stamped with a per-source monotonic
    application sequence number (``Frame.source_seq``) and the simulation
    time of creation (``Frame.created_s``) — the anchors end-to-end
    delivery-delay and loss metrics key on (the MAC's own ``sequence``
    restarts per hop and says nothing about creation time).
    """

    def __init__(
        self,
        node: Node,
        destination: Optional[str],
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        bit_rate_bps: Optional[int] = None,
    ) -> None:
        self.node = node
        self.destination = destination
        self.payload_bytes = payload_bytes
        self.bit_rate_bps = bit_rate_bps
        self.generated = 0

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def _make_frame(self) -> Frame:
        self.generated += 1
        kwargs = {}
        if self.bit_rate_bps is not None:
            kwargs["bit_rate_bps"] = self.bit_rate_bps
        return Frame(
            source=self.node.name,
            destination=self.destination,
            payload_bytes=self.payload_bytes,
            source_seq=self.generated,
            created_s=self.node.sim.now,
            **kwargs,
        )


class SaturatedSource(TrafficSource):
    """Keeps the MAC queue topped up — the saturated-traffic workload.

    Implementation: pre-fill the queue at start, then refill whenever the
    MAC reports its queue drained.
    """

    def __init__(
        self,
        node: Node,
        destination: Optional[str],
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        backlog: int = 2,
        bit_rate_bps: Optional[int] = None,
    ) -> None:
        super().__init__(node, destination, payload_bytes, bit_rate_bps)
        self.backlog = backlog
        self._running = False
        node.mac.add_idle_listener(self._refill)

    def start(self) -> None:
        self._running = True
        for _ in range(self.backlog):
            self.node.mac.send(self._make_frame())

    def stop(self) -> None:
        self._running = False

    def _refill(self) -> None:
        if not self._running:
            return
        while self.node.mac.queue_length < self.backlog:
            if not self.node.mac.send(self._make_frame()):
                break


class AttackerSource(TrafficSource):
    """Fixed-interval blaster (paper: 1 packet per 3 ms).

    The MAC should be configured with ``csma_enabled=False`` so packets go
    straight to air; with CSMA enabled this degenerates to a fast CBR
    source.
    """

    def __init__(
        self,
        node: Node,
        destination: Optional[str],
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        interval_s: float = 3.0 * MILLISECOND,
    ) -> None:
        super().__init__(node, destination, payload_bytes)
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self._process: Optional[Process] = None

    def start(self) -> None:
        def _body():
            while True:
                self.node.mac.send(self._make_frame())
                yield self.interval_s

        self._process = Process(
            self.node.sim, _body(), name=f"attacker.{self.node.name}"
        ).start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None


class PoissonSource(TrafficSource):
    """Open-loop Poisson arrivals at ``rate_pps`` packets per second."""

    def __init__(
        self,
        node: Node,
        destination: Optional[str],
        rate_pps: float,
        rng: np.random.Generator,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    ) -> None:
        super().__init__(node, destination, payload_bytes)
        if rate_pps <= 0:
            raise ValueError("rate_pps must be > 0")
        self.rate_pps = rate_pps
        self.rng = rng
        self._process: Optional[Process] = None

    def start(self) -> None:
        def _body():
            while True:
                yield float(self.rng.exponential(1.0 / self.rate_pps))
                self.node.mac.send(self._make_frame())

        self._process = Process(
            self.node.sim, _body(), name=f"poisson.{self.node.name}"
        ).start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None
