"""The radio: a CC2420-like transceiver state machine.

Responsibilities:

- **Sensing** — in-channel power (RSSI register / CCA measurement): the sum
  of every audible signal's power after spectral-mask attenuation toward the
  radio's channel, plus the noise floor.
- **Transmitting** — hands frames to the :class:`~repro.phy.medium.Medium`;
  a transmitting radio is deaf (half-duplex).
- **Receiving** — locks onto co-channel frames whose preamble is decodable
  (RSS above sensitivity and lock-time SINR above the capture threshold);
  off-channel frames are *never* lockable.  This asymmetry is the paper's
  central 802.15.4-vs-802.11 observation (Fig. 2): an 802.15.4 receiver
  cannot decode a packet even 1 MHz off its centre frequency, so
  neighbouring-channel energy acts as tolerable noise rather than hijacking
  the demodulator.

MAC layers subscribe via :meth:`Radio.add_frame_listener` and receive every
finished :class:`~repro.phy.errors.FrameReception` (CRC-good or not —
snooping CRC-failed frames still yields their RSSI, which the DCN
CCA-Adjustor uses).
"""

from __future__ import annotations

import enum
from collections import deque
from math import log10 as _log10
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.rng import RngStreams
from ..sim.simulator import Simulator
from ..sim.units import dbm_to_mw, mw_to_dbm
from .constants import NOISE_FLOOR_DBM, RSSI_AVG_WINDOW_S, RX_SENSITIVITY_DBM
from .energy import EnergyAccumulator
from .errors import FrameReception
from .frame import Frame
from .mask import SpectralMask, default_cca_mask, default_mask
from .medium import Medium, Signal, Transmission
from .propagation import Position
from .reception import Reception

__all__ = ["RadioState", "RadioConfig", "Radio"]

FrameListener = Callable[[FrameReception], None]


class RadioState(enum.Enum):
    """Transceiver state: listening (IDLE), transmitting (TX) or OFF."""

    IDLE = "idle"  # listening
    TX = "tx"
    OFF = "off"


@dataclass(frozen=True)
class RadioConfig:
    """Receiver characteristics (CC2420 defaults)."""

    sensitivity_dbm: float = RX_SENSITIVITY_DBM
    noise_floor_dbm: float = NOISE_FLOOR_DBM
    #: Minimum SINR at lock time for the preamble/SFD to synchronise.
    capture_threshold_db: float = -1.0
    #: Signals within this offset of the radio's centre count as co-channel.
    co_channel_tolerance_mhz: float = 0.5
    #: When True, CCA compares the 8-symbol *time-averaged* RSSI register
    #: (as the CC2420 actually does) instead of the instantaneous power.
    #: Off by default: at CSMA timescales the difference is small and the
    #: experiment calibration uses the instantaneous reading.
    cca_averaging: bool = False


class Radio:
    """One transceiver bound to a medium, a position and a channel."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Position,
        channel_mhz: float,
        tx_power_dbm: float,
        mask: Optional[SpectralMask] = None,
        cca_mask: Optional[SpectralMask] = None,
        config: Optional[RadioConfig] = None,
        rng: Optional[RngStreams] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.name = name
        self.position = position
        self.channel_mhz = channel_mhz
        self.tx_power_dbm = tx_power_dbm
        self.mask = mask if mask is not None else default_mask()
        #: The CCA/RSSI sensing path rejects off-channel energy a few dB
        #: more sharply than the demodulator's interference coupling.
        self.cca_mask = cca_mask if cca_mask is not None else default_cca_mask(self.mask)
        self.config = config if config is not None else RadioConfig()
        #: Hot-path copies of the (frozen) config scalars: the lock
        #: decision tree reads them once per delivered signal, where the
        #: dataclass attribute indirection is measurable.
        self._sensitivity_dbm = self.config.sensitivity_dbm
        self._capture_threshold_db = self.config.capture_threshold_db
        self._co_channel_tolerance_mhz = self.config.co_channel_tolerance_mhz
        rng_streams = rng if rng is not None else medium.rng
        self._bit_rng = rng_streams.stream(f"biterrors.{name}")
        self.state = RadioState.IDLE
        self.active_signals: List[Signal] = []
        self.current_reception: Optional[Reception] = None
        self._frame_listeners: List[FrameListener] = []
        self._noise_mw = dbm_to_mw(self.config.noise_floor_dbm)
        #: Memoised per-offset linear gains: signal centre frequency ->
        #: ``(decode_gain, sense_gain)``.  Channel offsets form a small
        #: discrete set, so the mask curves are evaluated once per offset
        #: instead of once per probe.
        self._gain_memo: dict = {}
        #: Running sensing-path interference sum (mW, excludes noise).
        #: Maintained incrementally by :meth:`_add_signal` /
        #: :meth:`_remove_signal`; reset exactly on removal so float drift
        #: cannot accumulate.
        self._sense_sum_mw = 0.0
        self.energy = EnergyAccumulator(tx_power_dbm=tx_power_dbm)
        #: Step history of the sensing-path power: ``(time, power_mw)``
        #: entries meaning "sensed power became power_mw at time".  Feeds
        #: the time-averaged RSSI register.
        self._sense_history = deque(maxlen=128)
        self._sense_history.append((self.sim.now, self._noise_mw))
        #: Reference-path toggle (set by the medium): when True the
        #: power probes re-derive every contribution from the spectral
        #: masks per call instead of using the memoised gains and the
        #: incremental sum — the pre-PR-2 algorithm, kept live for the
        #: differential oracle (``python -m repro check diff``).
        self._reference_accumulators = medium.reference_accumulators
        #: The sim's trace sink is fixed at construction; caching the
        #: object saves two attribute hops per delivered signal.
        self._trace = sim.trace
        #: Band sub-heap index for this radio's timers and signal events
        #: (``None``: the main event heap).  Assigned by the medium during
        #: registration when the sharded scheduler is enabled; MAC layers
        #: pass it as ``shard=`` when scheduling band-local events.
        self.event_shard: Optional[int] = None
        medium.register(self)
        if sim.obs is not None:
            sim.obs.register_radio(self)

    # ------------------------------------------------------------------
    # Listener plumbing
    # ------------------------------------------------------------------
    def add_frame_listener(self, listener: FrameListener) -> None:
        self._frame_listeners.append(listener)

    def _dispatch_reception(self, outcome: FrameReception) -> None:
        if self._trace.enabled:
            self.sim.trace.emit(
                "rx_done",
                radio=self.name,
                frame=outcome.frame.frame_id,
                crc=outcome.crc_ok,
                rssi=round(outcome.rssi_dbm, 2),
                errors=outcome.errored_bits,
            )
        for listener in self._frame_listeners:
            listener(outcome)

    # ------------------------------------------------------------------
    # Signal bookkeeping (incremental power accumulators)
    # ------------------------------------------------------------------
    def _gains_for(self, channel_mhz: float) -> tuple:
        """Linear ``(decode, sense)`` gains for a signal at ``channel_mhz``."""
        gains = self._gain_memo.get(channel_mhz)
        if gains is None:
            offset = channel_mhz - self.channel_mhz
            gains = (
                10.0 ** (-self.mask.leakage_db(offset) / 10.0),
                10.0 ** (-self.cca_mask.leakage_db(offset) / 10.0),
            )
            self._gain_memo[channel_mhz] = gains
        return gains

    def _add_signal(self, signal: Signal) -> None:
        """Start tracking ``signal``: cache its post-mask contributions,
        fold them into the running sensing-path sum (O(1)) and step the
        RSSI-register history."""
        gains = self._gain_memo.get(signal.channel_mhz)
        if gains is None:
            gains = self._gains_for(signal.channel_mhz)
        rx_power_mw = signal.rx_power_mw
        signal.decode_mw = rx_power_mw * gains[0]
        sense_mw = rx_power_mw * gains[1]
        signal.sense_mw = sense_mw
        self.active_signals.append(signal)
        sense_sum = self._sense_sum_mw + sense_mw
        self._sense_sum_mw = sense_sum
        sim = self.sim
        self._sense_history.append((sim.now, self._noise_mw + sense_sum))
        checks = sim.checks
        if checks is not None:
            checks.on_accumulator_update(self)

    def _remove_signal(self, signal: Signal) -> None:
        """Stop tracking ``signal`` and rebuild the sensing-path sum.

        The rebuild is a plain sum over the (short) remaining list of
        already-cached floats: this keeps removal cheap while making the
        running sum *exactly* equal to a fresh brute-force re-summation —
        no incremental subtraction, hence no cancellation drift.
        """
        signals = self.active_signals
        signals.remove(signal)
        if signals:
            total = 0.0
            for s in signals:
                total += s.sense_mw
            self._sense_sum_mw = total
        else:
            self._sense_sum_mw = total = 0.0
        sim = self.sim
        self._sense_history.append((sim.now, self._noise_mw + total))
        checks = sim.checks
        if checks is not None:
            checks.on_accumulator_update(self)

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def in_channel_power_mw(self, exclude: Optional[Signal] = None) -> float:
        """Decode-path in-channel power (mW) including the noise floor.

        Each active signal is attenuated by the demodulator-coupling mask
        according to its centre-frequency offset from this radio's channel
        (contribution cached at signal start).  This is the interference
        term of reception SINR.
        """
        if self._reference_accumulators:
            return self.resample_in_channel_power_mw(exclude)
        total = self._noise_mw
        for signal in self.active_signals:
            if signal is exclude:
                continue
            total += signal.decode_mw
        return total

    def sensed_power_mw(self) -> float:
        """Sensing-path in-channel power (mW): what CCA/RSSI measures.

        O(1): the per-signal contributions are accumulated incrementally as
        signals start and end rather than re-summed on every probe.
        """
        if self._reference_accumulators:
            return self.resample_sense_power_mw()
        return self._noise_mw + self._sense_sum_mw

    # ------------------------------------------------------------------
    # Reference resampling (pre-PR-2 algorithms, kept live)
    # ------------------------------------------------------------------
    def resample_sense_power_mw(self) -> float:
        """Sensing-path power by full mask re-evaluation.

        The reference algorithm behind :meth:`sensed_power_mw`: every
        active signal's CCA-mask leakage is recomputed per call and the
        contributions are summed in active-list order with the noise
        floor added last — the exact float-operation order the
        incremental accumulator maintains, so a healthy accumulator
        matches this *bit for bit*.  Used by the invariant layer's
        periodic resample and by the ``check diff`` reference path.
        """
        total = 0.0
        for signal in self.active_signals:
            leakage_db = self.cca_mask.leakage_db(
                signal.channel_mhz - self.channel_mhz
            )
            total += signal.rx_power_mw * (10.0 ** (-leakage_db / 10.0))
        return self._noise_mw + total

    def resample_in_channel_power_mw(
        self, exclude: Optional[Signal] = None
    ) -> float:
        """Decode-path power by full mask re-evaluation (reference).

        Float-order-identical to :meth:`in_channel_power_mw` (noise
        floor first, contributions in active-list order), with each
        per-signal gain re-derived from the decode mask instead of the
        memoised ``decode_mw`` cache.
        """
        total = self._noise_mw
        for signal in self.active_signals:
            if signal is exclude:
                continue
            leakage_db = self.mask.leakage_db(
                signal.channel_mhz - self.channel_mhz
            )
            total += signal.rx_power_mw * (10.0 ** (-leakage_db / 10.0))
        return total

    def sense_power_dbm(self) -> float:
        """Instantaneous sensed power in dBm."""
        return mw_to_dbm(self.sensed_power_mw())

    def rssi_register_dbm(self, window_s: float = RSSI_AVG_WINDOW_S) -> float:
        """The CC2420 RSSI register: sensed power averaged over 8 symbols.

        Computed as the time-weighted mean of the sensing-path power over
        the trailing ``window_s`` (128 us), exactly how the chip's
        RSSI.RSSI_VAL behaves.
        """
        now = self.sim.now
        horizon = now - window_s
        # Walk the step history backwards, accumulating weighted power.
        total = 0.0
        covered_until = now
        for time, power_mw in reversed(self._sense_history):
            start = max(time, horizon)
            if start < covered_until:
                total += power_mw * (covered_until - start)
                covered_until = start
            if time <= horizon:
                break
        if covered_until > horizon:
            # History shorter than the window: extend the oldest level.
            oldest_power = self._sense_history[0][1]
            total += oldest_power * (covered_until - horizon)
        return mw_to_dbm(total / window_s)

    def _record_sense_change(self) -> None:
        """Append the current sensed level to the RSSI-register history.

        Signal start/end bookkeeping records steps inline; this helper
        remains for explicit re-synchronisation (e.g. after a config
        change in tests)."""
        self._sense_history.append(
            (self.sim.now, self._noise_mw + self._sense_sum_mw)
        )

    def cca_busy(self, threshold_dbm: float) -> bool:
        """Energy-detection CCA: busy when in-channel power > threshold."""
        if self.config.cca_averaging:
            return self.rssi_register_dbm() > threshold_dbm
        return self.sense_power_dbm() > threshold_dbm

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def transmit(
        self, frame: Frame, on_complete: Callable[[Transmission], None]
    ) -> Transmission:
        """Start transmitting ``frame`` at this radio's channel and power.

        Any in-progress reception is abandoned (half-duplex radio).  The
        radio returns to IDLE and ``on_complete`` fires at end-of-airtime.
        """
        if self.state is RadioState.TX:
            raise RuntimeError(f"radio {self.name!r} is already transmitting")
        if self.state is RadioState.OFF:
            raise RuntimeError(f"radio {self.name!r} is off")
        obs = self.sim.obs
        if self.current_reception is not None:
            if obs is not None:
                obs.on_rx_abort(
                    self.name, self.current_reception.start_time, self.sim.now
                )
            self.current_reception.abort()
            self.current_reception = None
            if self.sim.trace.enabled:
                self.sim.trace.emit("rx_aborted_by_tx", radio=self.name)
        self.state = RadioState.TX
        self.energy.transition("tx", self.sim.now)
        tx_start = self.sim.now

        def _finish(transmission: Transmission) -> None:
            self.state = RadioState.IDLE
            self.energy.transition("idle", self.sim.now)
            if obs is not None:
                obs.on_tx(self.name, tx_start, self.sim.now, frame.frame_id)
            on_complete(transmission)

        return self.medium.begin_transmission(
            self, frame, self.channel_mhz, self.tx_power_dbm, _finish
        )

    # ------------------------------------------------------------------
    # Medium callbacks
    # ------------------------------------------------------------------
    def on_signal_start(self, signal: Signal) -> None:
        reception = self.current_reception
        if reception is not None:
            # Close the elapsed segment under the *old* interference set
            # before the new signal starts counting.
            reception.on_interference_change()
            self._add_signal(signal)
            return
        self._add_signal(signal)
        offset = signal.channel_mhz - self.channel_mhz
        if (offset if offset >= 0.0 else -offset) > self._co_channel_tolerance_mhz:
            return
        self._maybe_lock(signal)

    def _maybe_lock(self, signal: Signal) -> None:
        """Lock ladder for a just-added co-channel signal.

        Factored out of :meth:`on_signal_start` so the medium's batched
        delivery loop (which precomputes the co-channel test per fanout
        entry) can reuse it.  The state/sensitivity/SINR checks are pure
        predicates with no observable effects before the first trace emit,
        so evaluating the channel-offset test ahead of them — as both call
        sites do — leaves traces untouched.
        """
        if self.state is not RadioState.IDLE:
            return
        if signal.rx_power_dbm < self._sensitivity_dbm:
            return
        if self._lock_sinr_db(signal) < self._capture_threshold_db:
            if self._trace.enabled:
                self.sim.trace.emit(
                    "preamble_missed",
                    radio=self.name,
                    frame=signal.frame.frame_id,
                    rssi=round(signal.rx_power_dbm, 2),
                )
            return
        self.current_reception = Reception(self, signal, self._bit_rng)
        if self._trace.enabled:
            self.sim.trace.emit(
                "rx_lock", radio=self.name, frame=signal.frame.frame_id
            )

    def on_signal_end(self, signal: Signal) -> None:
        reception = self.current_reception
        if reception is not None:
            if reception.signal is signal:
                # Close the final segment while the signal still counts as
                # "active minus itself" — remove it afterwards.
                outcome = reception.finalize()
                self.current_reception = None
                self._remove_signal(signal)
                obs = self.sim.obs
                if obs is not None:
                    obs.on_rx(
                        self.name, reception.start_time, self.sim.now,
                        outcome.frame.frame_id, outcome.crc_ok,
                        outcome.rssi_dbm,
                    )
                self._dispatch_reception(outcome)
                return
            # Close the elapsed segment while the ending signal still
            # counts as interference.
            reception.on_interference_change()
        self._remove_signal(signal)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _is_co_channel(self, signal: Signal) -> bool:
        offset = abs(signal.channel_mhz - self.channel_mhz)
        return offset <= self.config.co_channel_tolerance_mhz

    def _lock_sinr_db(self, signal: Signal) -> float:
        # Fast path: at lock time the candidate signal is already in the
        # active list, so a singleton list means the excluded loop would
        # contribute nothing — the interference term is exactly the noise
        # floor (bit-identical to the general path).
        active = self.active_signals
        if (
            len(active) == 1
            and active[0] is signal
            and not self._reference_accumulators
        ):
            interference_mw = self._noise_mw
        else:
            interference_mw = self.in_channel_power_mw(exclude=signal)
        if interference_mw <= 0.0:
            return 100.0
        # Inlined linear_to_db (same expression, bit for bit): hot.
        return 10.0 * _log10(signal.rx_power_mw / interference_mw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Radio {self.name} ch={self.channel_mhz} MHz "
            f"p={self.tx_power_dbm} dBm {self.state.value}>"
        )
