"""Per-frame reception bookkeeping: segment SINR -> sampled bit errors.

A :class:`Reception` is created when a radio locks onto a co-channel frame.
The interference environment is piecewise-constant between signal start/end
events, so the reception is tracked as a sequence of *segments*: whenever
the interference changes, the elapsed segment is closed — its SINR is
computed, mapped to a BER, and the number of errored bits in the segment is
drawn from a binomial distribution.  On finalisation the accumulated error
count decides CRC success and yields the error-bit fraction used by the
packet-recovery analysis.
"""

from __future__ import annotations

from math import log10 as _log10
from typing import TYPE_CHECKING, Callable

import numpy as np

from .constants import BIT_RATE_BPS
from .errors import FrameReception
from .medium import Signal
from .modulation import oqpsk_ber

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio

__all__ = ["Reception"]

BerModel = Callable[[float], float]


class Reception:
    """Tracks one locked frame at one radio until it completes or aborts."""

    __slots__ = (
        "radio",
        "signal",
        "rng",
        "ber_model",
        "bit_rate_bps",
        "start_time",
        "errored_bits",
        "sampled_bits",
        "_segment_start",
        "_finished",
    )

    def __init__(
        self,
        radio: "Radio",
        signal: Signal,
        rng: np.random.Generator,
        ber_model: BerModel = oqpsk_ber,
        bit_rate_bps: int = BIT_RATE_BPS,
    ) -> None:
        self.radio = radio
        self.signal = signal
        self.rng = rng
        self.ber_model = ber_model
        self.bit_rate_bps = bit_rate_bps
        self.start_time = radio.sim.now
        self.errored_bits = 0
        self.sampled_bits = 0
        self._segment_start = self.start_time
        self._finished = False

    # ------------------------------------------------------------------
    def on_interference_change(self) -> None:
        """The interference environment changed: close the current segment."""
        self._close_segment(self.radio.sim.now)

    def finalize(self) -> FrameReception:
        """The locked signal ended normally: produce the outcome."""
        radio = self.radio
        now = radio.sim.now
        self._close_segment(now)
        self._finished = True
        signal = self.signal
        errored_bits = self.errored_bits
        # Positional field order: frame, rssi_dbm, crc_ok, errored_bits,
        # total_bits, start_time, end_time (kwargs cost on a hot ctor).
        outcome = FrameReception(
            signal.transmission.frame,
            signal.rx_power_dbm,
            errored_bits == 0,
            errored_bits,
            self.sampled_bits,
            self.start_time,
            now,
        )
        checks = radio.sim.checks
        if checks is not None:
            # Bit conservation: a completed frame must have sampled
            # exactly round(airtime * bit_rate) bits.
            checks.on_frame_complete(self, outcome)
        return outcome

    def abort(self) -> None:
        """Reception abandoned (e.g. the radio switched to transmit)."""
        self._finished = True

    # ------------------------------------------------------------------
    def _close_segment(self, now: float) -> None:
        if self._finished:
            return
        segment_start = self._segment_start
        self._segment_start = now
        if now <= segment_start:
            return
        # Account bits against the *frame timeline*, not per segment:
        # rounding each segment independently lets fractional bits drift
        # (over- or under-counting the frame total when interference
        # changes many times mid-frame).  Instead, each segment samples
        # exactly the bits between the rounded cumulative elapsed-bit
        # counts, so the sampled total of a completed frame always equals
        # round(airtime * bit_rate) — the frame's true on-air bit length.
        # round() on a float with no ndigits already returns an int.
        cumulative_bits = round((now - self.start_time) * self.bit_rate_bps)
        n_bits = cumulative_bits - self.sampled_bits
        if n_bits <= 0:
            return
        ber = self.ber_model(self._current_sinr_db())
        self.sampled_bits = cumulative_bits
        if ber > 0.0:
            self.errored_bits += int(self.rng.binomial(n_bits, min(ber, 1.0)))

    def _current_sinr_db(self) -> float:
        radio = self.radio
        signal = self.signal
        # Fast path: the locked signal is always active during reception,
        # so a singleton active list means it *is* the excluded signal and
        # the interference term is exactly the noise floor (the loop in
        # in_channel_power_mw would add nothing) — bit-identical, minus
        # the call and loop overhead on the hottest per-segment probe.
        active = radio.active_signals
        if (
            len(active) == 1
            and active[0] is signal
            and not radio._reference_accumulators
        ):
            interference_mw = radio._noise_mw
        else:
            interference_mw = radio.in_channel_power_mw(exclude=signal)
        if interference_mw <= 0.0:
            return 100.0
        # Inlined linear_to_db (same expression, bit for bit): hot.
        return 10.0 * _log10(signal.rx_power_mw / interference_mw)
