"""Spectrum bands and non-orthogonal channel plans.

The paper allocates channel centre frequencies over a fixed spectrum band
with a configurable channel frequency distance (CFD).  Two allocation
conventions appear in the paper and both are implemented here:

- ``slot`` — the Fig. 1 motivation experiment on a "12 MHz bandwidth":
  the number of channels is ``floor(band_width / cfd)`` (9 MHz -> 1 channel,
  5 -> 2, 4 -> 3, 3 -> 4, 2 -> 6).
- ``inclusive`` — the Section VI evaluation on 2458-2473 MHz: centres are
  placed from the low edge to the high edge inclusive, giving
  ``span / cfd + 1`` channels (15 MHz -> 6 @ 3 MHz, 4 @ 5 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Band", "ChannelPlan", "EVALUATION_BAND", "MOTIVATION_BAND"]


@dataclass(frozen=True)
class Band:
    """A contiguous slice of spectrum, in MHz."""

    low_mhz: float
    high_mhz: float

    def __post_init__(self) -> None:
        if self.high_mhz <= self.low_mhz:
            raise ValueError(
                f"band must have high > low, got [{self.low_mhz}, {self.high_mhz}]"
            )

    @property
    def width_mhz(self) -> float:
        return self.high_mhz - self.low_mhz

    def contains(self, freq_mhz: float) -> bool:
        return self.low_mhz <= freq_mhz <= self.high_mhz


#: The Section VI evaluation band: "from 2458MHz to 2473MHz" (15 MHz).
EVALUATION_BAND = Band(2458.0, 2473.0)
#: The Section III motivation experiment band (12 MHz wide).
MOTIVATION_BAND = Band(2458.0, 2470.0)


@dataclass(frozen=True)
class ChannelPlan:
    """An ordered list of channel centre frequencies over a band.

    ``centers_mhz`` is ordered so that index 0 is the paper's network N0 —
    the *median* frequency — followed by the remaining channels sorted by
    increasing distance from the centre of the band.  This matches the
    paper's naming where N0 always denotes the middle channel that suffers
    the most inter-channel interference and N4/N5 sit at the band edges.
    """

    band: Band
    cfd_mhz: float
    centers_mhz: Sequence[float]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def slot(cls, band: Band, cfd_mhz: float) -> "ChannelPlan":
        """Fig. 1 convention: ``floor(width / cfd)`` channels.

        Channels are packed from the low edge with one CFD of spectrum per
        channel; centres sit in the middle of each slot.
        """
        if cfd_mhz <= 0:
            raise ValueError(f"cfd must be positive, got {cfd_mhz}")
        count = int(band.width_mhz // cfd_mhz)
        if count < 1:
            raise ValueError(
                f"band of {band.width_mhz} MHz cannot fit any channel at "
                f"CFD {cfd_mhz} MHz"
            )
        centers = [
            band.low_mhz + cfd_mhz * (i + 0.5) for i in range(count)
        ]
        return cls(band, cfd_mhz, tuple(_median_first(centers)))

    @classmethod
    def inclusive(cls, band: Band, cfd_mhz: float) -> "ChannelPlan":
        """Section VI convention: centres at both edges, ``span/cfd + 1``."""
        if cfd_mhz <= 0:
            raise ValueError(f"cfd must be positive, got {cfd_mhz}")
        count = int(round(band.width_mhz / cfd_mhz)) + 1
        centers = [band.low_mhz + cfd_mhz * i for i in range(count)]
        if centers[-1] > band.high_mhz + 1e-9:
            centers = [c for c in centers if c <= band.high_mhz + 1e-9]
        return cls(band, cfd_mhz, tuple(_median_first(centers)))

    @classmethod
    def explicit(cls, centers_mhz: Sequence[float], cfd_mhz: float = 0.0) -> "ChannelPlan":
        """A plan from raw centre frequencies (kept in the given order)."""
        if not centers_mhz:
            raise ValueError("a channel plan needs at least one centre")
        low = min(centers_mhz) - 1.0
        high = max(centers_mhz) + 1.0
        return cls(Band(low, high), cfd_mhz, tuple(centers_mhz))

    # ------------------------------------------------------------------
    @property
    def num_channels(self) -> int:
        return len(self.centers_mhz)

    def sorted_centers(self) -> List[float]:
        """Centres in increasing-frequency order."""
        return sorted(self.centers_mhz)

    def neighbour_distance_mhz(self, center_mhz: float) -> float:
        """Distance to the nearest other channel in the plan."""
        others = [c for c in self.centers_mhz if c != center_mhz]
        if not others:
            return float("inf")
        return min(abs(c - center_mhz) for c in others)

    def label(self, index: int) -> str:
        """Paper-style network label for channel ``index`` (N0, N1, ...)."""
        return f"N{index}"


def _median_first(centers: List[float]) -> List[float]:
    """Order centres with the median (middle) frequency first.

    Ties in distance from the band middle are broken low-frequency-first so
    the ordering is deterministic.
    """
    ordered = sorted(centers)
    mid = (ordered[0] + ordered[-1]) / 2.0
    return sorted(ordered, key=lambda c: (abs(c - mid), c))
