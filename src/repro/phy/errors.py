"""Reception outcomes, CRC modelling and error-bit statistics.

CRC-16 failure is modelled as "any sampled bit error within the MPDU" —
pessimistic by a vanishing margin (probability of an undetected CRC-16
error is ~2^-16 and irrelevant to the paper's metrics).

:class:`ErrorStats` aggregates the per-packet *error-bit fraction* of
CRC-failed packets, which is exactly the quantity behind the paper's Fig. 29
(87 % of CRC-failed packets carry <= 10 % error bits) and the packet-recovery
discussion of Section VII-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .frame import Frame

__all__ = ["FrameReception", "ErrorStats"]


@dataclass(slots=True, eq=False)
class FrameReception:
    """The outcome of one attempted frame reception at one radio.

    Treated as immutable by convention (one is built per finished
    reception on the kernel hot path; ``frozen=True``'s per-field
    ``object.__setattr__`` construction cost is measurable there, so the
    dataclass is slotted and compared by identity instead).

    Attributes
    ----------
    frame:
        The frame that was (perhaps unsuccessfully) received.
    rssi_dbm:
        Received signal strength of this frame at this radio — what the
        CC2420 would stamp into the RSSI byte of the RX FIFO.
    crc_ok:
        True when the frame decoded without bit errors.
    errored_bits / total_bits:
        Sampled bit errors over the frame body.
    start_time / end_time:
        Reception interval in simulation time.
    """

    frame: Frame
    rssi_dbm: float
    crc_ok: bool
    errored_bits: int
    total_bits: int
    start_time: float
    end_time: float

    @property
    def error_fraction(self) -> float:
        """Fraction of errored bits (0 when nothing was sampled)."""
        if self.total_bits <= 0:
            return 0.0
        return self.errored_bits / self.total_bits


class ErrorStats:
    """Collects error-bit fractions of CRC-failed receptions."""

    def __init__(self) -> None:
        self._fractions: List[float] = []

    def record(self, reception: FrameReception) -> None:
        if not reception.crc_ok:
            self._fractions.append(reception.error_fraction)

    @property
    def count(self) -> int:
        return len(self._fractions)

    def fraction_at_most(self, threshold: float) -> float:
        """CDF value: share of CRC-failed packets with error fraction <= t."""
        if not self._fractions:
            return 0.0
        hits = sum(1 for f in self._fractions if f <= threshold)
        return hits / len(self._fractions)

    def cdf(self, thresholds: Sequence[float]) -> List[Tuple[float, float]]:
        """CDF sampled at the given thresholds."""
        return [(t, self.fraction_at_most(t)) for t in thresholds]

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile of error fractions, or ``None`` when empty."""
        if not self._fractions:
            return None
        ordered = sorted(self._fractions)
        idx = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[idx]
