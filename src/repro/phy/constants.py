"""802.15.4 PHY and CC2420/MicaZ hardware constants.

Values are taken from the IEEE 802.15.4-2003 2.4 GHz PHY and the Chipcon
CC2420 datasheet — the radio used by the MicaZ motes in the paper's testbed.
"""

from __future__ import annotations

from .. import sim

__all__ = [
    "BIT_RATE_BPS",
    "SYMBOL_RATE_SPS",
    "SYMBOL_PERIOD_S",
    "BITS_PER_SYMBOL",
    "PREAMBLE_BYTES",
    "SFD_BYTES",
    "LENGTH_FIELD_BYTES",
    "PHY_HEADER_BYTES",
    "MHR_BYTES",
    "FCS_BYTES",
    "MAX_MPDU_BYTES",
    "UNIT_BACKOFF_PERIOD_S",
    "CCA_DURATION_S",
    "TURNAROUND_TIME_S",
    "DEFAULT_CCA_THRESHOLD_DBM",
    "RX_SENSITIVITY_DBM",
    "NOISE_FLOOR_DBM",
    "NOISE_BANDWIDTH_MHZ",
    "RSSI_AVG_SYMBOLS",
    "RSSI_AVG_WINDOW_S",
    "CHANNEL_SPACING_MHZ",
    "CHANNEL_11_MHZ",
    "NUM_CHANNELS",
    "MAX_TX_POWER_DBM",
    "MIN_TX_POWER_DBM",
    "CC2420_PA_LEVELS",
    "channel_center_mhz",
    "pa_level_for_power",
]

# ---------------------------------------------------------------------------
# 2.4 GHz O-QPSK PHY timing
# ---------------------------------------------------------------------------
#: Raw data rate of the 2.4 GHz PHY.
BIT_RATE_BPS = 250_000
#: 62.5 ksymbols/s; each symbol carries 4 bits.
SYMBOL_RATE_SPS = 62_500
BITS_PER_SYMBOL = 4
SYMBOL_PERIOD_S = 1.0 / SYMBOL_RATE_SPS  # 16 us

# ---------------------------------------------------------------------------
# Frame overheads (bytes)
# ---------------------------------------------------------------------------
PREAMBLE_BYTES = 4
SFD_BYTES = 1
LENGTH_FIELD_BYTES = 1
#: Synchronisation header + PHY header: sent before the MPDU.
PHY_HEADER_BYTES = PREAMBLE_BYTES + SFD_BYTES + LENGTH_FIELD_BYTES
#: Typical data-frame MAC header (FCF 2 + seq 1 + PAN 2 + dst 2 + src 2 = 9;
#: TinyOS AM adds a couple more — 11 matches common MicaZ configurations).
MHR_BYTES = 11
#: CRC-16 frame check sequence.
FCS_BYTES = 2
#: Maximum MPDU (aMaxPHYPacketSize).
MAX_MPDU_BYTES = 127

# ---------------------------------------------------------------------------
# MAC/PHY timing primitives (in seconds)
# ---------------------------------------------------------------------------
#: aUnitBackoffPeriod = 20 symbols.
UNIT_BACKOFF_PERIOD_S = 20 * SYMBOL_PERIOD_S  # 320 us
#: CCA measurement time = 8 symbols.
CCA_DURATION_S = 8 * SYMBOL_PERIOD_S  # 128 us
#: aTurnaroundTime (RX<->TX) = 12 symbols.
TURNAROUND_TIME_S = 12 * SYMBOL_PERIOD_S  # 192 us

# ---------------------------------------------------------------------------
# CC2420 radio characteristics
# ---------------------------------------------------------------------------
#: Default energy-detection CCA threshold (the paper's "fixed at -77 dBm").
DEFAULT_CCA_THRESHOLD_DBM = -77.0
#: Receiver sensitivity (datasheet typical: -94 dBm).
RX_SENSITIVITY_DBM = -94.0
#: Effective noise floor: thermal noise over ~2 MHz plus ~11 dB noise figure.
NOISE_FLOOR_DBM = -100.0
#: Receiver noise bandwidth used for SINR bookkeeping.
NOISE_BANDWIDTH_MHZ = 2.0
#: The RSSI register averages over 8 symbol periods (128 us).
RSSI_AVG_SYMBOLS = 8
RSSI_AVG_WINDOW_S = RSSI_AVG_SYMBOLS * SYMBOL_PERIOD_S

#: 802.15.4 channel grid: channel k (11..26) sits at 2405 + 5 (k - 11) MHz.
CHANNEL_SPACING_MHZ = 5.0
CHANNEL_11_MHZ = 2405.0
NUM_CHANNELS = 16

MAX_TX_POWER_DBM = 0.0
MIN_TX_POWER_DBM = -33.0

#: CC2420 PA_LEVEL register settings -> nominal output power (dBm).
CC2420_PA_LEVELS = {
    31: 0.0,
    27: -1.0,
    23: -3.0,
    19: -5.0,
    15: -7.0,
    11: -10.0,
    7: -15.0,
    3: -25.0,
}


def channel_center_mhz(channel: int) -> float:
    """Centre frequency of IEEE 802.15.4 channel ``channel`` (11-26)."""
    if not 11 <= channel <= 26:
        raise ValueError(f"802.15.4 channel must be in 11..26, got {channel}")
    return CHANNEL_11_MHZ + CHANNEL_SPACING_MHZ * (channel - 11)


def pa_level_for_power(power_dbm: float) -> int:
    """Smallest CC2420 PA level whose nominal power is >= ``power_dbm``.

    The testbed sets power through the PA register; experiments in the paper
    quote the resulting dBm values.  We accept arbitrary dBm in the model but
    expose this helper for hardware-faithful configurations.
    """
    if power_dbm > MAX_TX_POWER_DBM:
        raise ValueError(f"CC2420 cannot exceed {MAX_TX_POWER_DBM} dBm")
    candidates = [
        (level, dbm) for level, dbm in CC2420_PA_LEVELS.items() if dbm >= power_dbm
    ]
    level, _ = min(candidates, key=lambda pair: pair[1])
    return level


# Re-exported for convenience: power helpers live in repro.sim.units.
dbm_to_mw = sim.dbm_to_mw
mw_to_dbm = sim.mw_to_dbm
