"""The shared wireless medium.

The medium knows every radio, the path-loss model and the fading model.
When a radio begins transmitting, the medium computes the received power at
every *audible* radio (path loss + per-packet fading), delivers a
``signal start`` notification immediately and schedules the matching
``signal end``.  Radios decide for themselves what a signal means to them
(lockable co-channel frame vs. inter-channel interference) — the medium is
channel-agnostic and simply carries centre frequencies around.

Performance architecture (see DESIGN.md §9)
-------------------------------------------
Node positions are static for the lifetime of a run, so the mean link
budget between any two radios never changes.  :class:`LinkGainCache`
exploits this twice:

1. **mean-RSS memoisation** — the path-loss model is consulted once per
   ``(source, receiver, tx power)`` triple instead of once per frame;
2. **audible-set culling** — receivers whose *best-case* RSS (mean plus
   the fading model's maximum possible gain, :meth:`FadingModel.max_gain_db`)
   cannot clear ``delivery_floor_dbm`` are dropped from the fan-out list
   entirely, so transmission cost scales with the number of audible
   receivers, not with the size of the network.

Culling is exact, not approximate: a culled receiver is one that could not
have been delivered a signal under *any* fading draw, so the brute-force
fan-out (``link_cache=False``) produces byte-identical results.  That
guarantee requires fading draws to be independent per link, which is why
fading uses **per-link RNG streams** (named ``fading.{src}.{dst}``) rather
than one shared stream: skipping an inaudible link must not shift any other
link's draw sequence.

Event ordering: at identical timestamps, signal *ends* fire before signal
*starts* (priority 0 vs 1) so that back-to-back transmissions do not appear
to overlap for an instant.  All per-receiver end notifications of one
transmission are delivered by a single batched event (they are scheduled
consecutively, so batching preserves the total order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.rng import RngStreams
from ..sim.simulator import Simulator
from .fading import FadingModel, NoFading
from .frame import Frame
from .propagation import PathLossModel

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio

__all__ = [
    "Transmission",
    "Signal",
    "Medium",
    "LinkGainCache",
    "PRIORITY_SIGNAL_END",
    "PRIORITY_SIGNAL_START",
]

PRIORITY_SIGNAL_END = 0
PRIORITY_SIGNAL_START = 1


@dataclass(slots=True)
class Transmission:
    """One frame on the air, as seen by the transmitter."""

    source: "Radio"
    frame: Frame
    channel_mhz: float
    tx_power_dbm: float
    start_time: float
    end_time: float

    @property
    def airtime_s(self) -> float:
        return self.end_time - self.start_time


class Signal:
    """A transmission as observed by one receiver (with its own RSS).

    ``decode_mw`` / ``sense_mw`` are the receiver-cached post-mask
    contributions of this signal to the decode-path and sensing-path
    in-channel power sums (set by :meth:`Radio._add_signal`); caching them
    here makes the incremental power accumulators O(1) per probe.
    """

    __slots__ = (
        "transmission",
        "rx_power_dbm",
        "rx_power_mw",
        "channel_mhz",
        "decode_mw",
        "sense_mw",
    )

    def __init__(self, transmission: Transmission, rx_power_dbm: float) -> None:
        self.transmission = transmission
        self.rx_power_dbm = rx_power_dbm
        # Inlined dbm_to_mw (same expression, bit for bit): one Signal is
        # built per (transmission, audible receiver) pair, so the
        # function-call overhead is hot.
        self.rx_power_mw = 10.0 ** (rx_power_dbm / 10.0)
        # Copied out of the transmission: read on every mask-gain lookup
        # and co-channel check, where a property indirection is measurable.
        self.channel_mhz = transmission.channel_mhz
        self.decode_mw = 0.0
        self.sense_mw = 0.0

    @property
    def frame(self) -> Frame:
        return self.transmission.frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Signal frame={self.frame.frame_id} ch={self.channel_mhz} MHz "
            f"rss={self.rx_power_dbm:.1f} dBm>"
        )


#: One audible-set entry: (receiver, mean RSS at the receiver in dBm,
#: the per-link fading stream).
AudibleEntry = Tuple["Radio", float, "np.random.Generator"]


class LinkGainCache:
    """Precomputed static link budgets and per-source audible sets.

    Built lazily: the audible set for a ``(source, tx_power)`` pair is
    computed on its first transmission and reused for every subsequent
    frame.  Registering a new radio updates every cached audible set
    *incrementally* (:meth:`register_radio` — the newcomer is appended
    wherever it is audible, exactly where a full rebuild would place it);
    moving a radio requires an explicit :meth:`invalidate` (positions are
    assumed static).
    """

    __slots__ = ("_medium", "_audible", "_sources")

    def __init__(self, medium: "Medium") -> None:
        self._medium = medium
        self._audible: Dict[Tuple[int, float], List[AudibleEntry]] = {}
        #: id(source) -> source, so cached keys can be resolved back to
        #: radios during incremental registration.  Holding the reference
        #: also guarantees the id is never recycled while cached.
        self._sources: Dict[int, "Radio"] = {}

    def invalidate(self) -> None:
        """Drop every cached audible set (e.g. after a position change)."""
        self._audible.clear()
        self._sources.clear()

    def register_radio(self, radio: "Radio") -> None:
        """Incrementally fold a newly registered radio into cached sets.

        A full rebuild iterates ``medium._radios`` in registration order,
        so the newcomer — last in that order — would land at the end of
        every audible list it belongs to.  Appending it there (with the
        mean RSS from the same scalar model call) is therefore
        bit-identical to invalidating and rebuilding, at O(cached keys)
        cost instead of O(cached keys x radios).
        """
        if not self._audible:
            return
        medium = self._medium
        path_loss = medium.path_loss
        floor = medium.delivery_floor_dbm
        headroom = medium.fading.max_gain_db()
        for (source_id, tx_power_dbm), entries in self._audible.items():
            source = self._sources[source_id]
            if radio is source:
                continue
            mean_rss = path_loss.received_power_dbm(
                tx_power_dbm, source.position, radio.position
            )
            if mean_rss + headroom < floor:
                continue
            entries.append(
                (radio, mean_rss, medium.link_fading_stream(source, radio))
            )

    def audible_entries(self, source: "Radio", tx_power_dbm: float) -> List[AudibleEntry]:
        """Receivers that can possibly hear ``source`` at ``tx_power_dbm``."""
        key = (id(source), tx_power_dbm)
        entries = self._audible.get(key)
        if entries is None:
            entries = self._build(source, tx_power_dbm)
            self._audible[key] = entries
            self._sources[id(source)] = source
        return entries

    def _build(self, source: "Radio", tx_power_dbm: float) -> List[AudibleEntry]:
        medium = self._medium
        path_loss = medium.path_loss
        floor = medium.delivery_floor_dbm
        headroom = medium.fading.max_gain_db()
        entries: List[AudibleEntry] = []
        for radio in medium._radios:
            if radio is source:
                continue
            mean_rss = path_loss.received_power_dbm(
                tx_power_dbm, source.position, radio.position
            )
            if mean_rss + headroom < floor:
                continue  # inaudible under any fading draw: cull
            entries.append(
                (radio, mean_rss, medium.link_fading_stream(source, radio))
            )
        return entries


class Medium:
    """Registry of radios plus signal delivery.

    Parameters
    ----------
    sim:
        The simulation kernel.
    path_loss:
        Large-scale propagation model.
    fading:
        Per-packet variation model (defaults to none).
    rng:
        Named RNG streams; fading draws come from per-link streams named
        ``fading.{source}.{receiver}``.
    delivery_floor_dbm:
        Signals below this received power are not delivered at all (they
        would be ~20 dB under the noise floor); keeps event counts linear in
        the number of *audible* receivers.
    link_cache:
        When ``True`` (the default) fan-out uses the
        :class:`LinkGainCache` audible sets; ``False`` forces the
        brute-force all-radios scan (reference path for exactness tests).
    reference_accumulators:
        When ``True`` every radio registered on this medium answers its
        power probes by full per-call mask re-evaluation (the pre-PR-2
        algorithm) instead of the memoised-gain incremental
        accumulators.  Together with ``link_cache=False`` this is the
        complete reference path the differential oracle
        (``python -m repro check diff``) runs against.
    vectorized:
        When ``True`` (the default) the link cache is the struct-of-arrays
        :class:`~repro.phy.vectorized.VectorizedLinkCache`: audible sets
        build through one batched path-loss call and fan-out draws all
        fading samples per transmission in one batch.  Bit-identical to
        the scalar cache (gated by ``repro check diff``); requires
        ``link_cache=True``.  See DESIGN.md §13.
    band_sharding:
        Opt-in approximation on top of the vectorized path: receivers
        whose best-case *post-mask* power at the transmission channel
        falls below ``delivery_floor_dbm`` are skipped entirely, so
        far-apart frequency bands never interact.  Sub-floor accumulator
        contributions (>=60 dB under the noise floor) are dropped, which
        is not guaranteed bit-exact for every workload — hence off by
        default.  Requires ``vectorized=True``.
    sharded_scheduler:
        The 50k-mote fast path (DESIGN.md §15), two coupled pieces: band
        sub-heaps on the event queue (each radio's timers and each
        transmission's end events land in a per-frequency-band shard,
        isolating CSMA churn and compaction per band) and the *batched*
        delivery loop (per-receiver accumulator updates driven by
        precomputed :class:`~repro.phy.vectorized.FanoutBatch` columns
        instead of per-signal ``Radio._add_signal`` dispatch).  Both are
        bit-exact: shard placement never reorders dispatch (the
        ``(time, priority, seq)`` key stays a global total order) and the
        batched loop performs float-for-float the same operations as the
        scalar path (gated by ``repro check diff`` and whole-scene
        property tests).  ``None`` (the default) resolves to
        ``vectorized``; requires ``vectorized=True`` when forced on.
    """

    def __init__(
        self,
        sim: Simulator,
        path_loss: PathLossModel,
        fading: Optional[FadingModel] = None,
        rng: Optional[RngStreams] = None,
        delivery_floor_dbm: float = -115.0,
        link_cache: bool = True,
        reference_accumulators: bool = False,
        vectorized: bool = True,
        band_sharding: bool = False,
        sharded_scheduler: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.path_loss = path_loss
        self.fading = fading if fading is not None else NoFading()
        self.rng = rng if rng is not None else RngStreams(0)
        self.delivery_floor_dbm = delivery_floor_dbm
        self.reference_accumulators = bool(reference_accumulators)
        self._radios: List["Radio"] = []
        self._radio_ids: set = set()
        self._radios_snapshot: Optional[Tuple["Radio", ...]] = None
        if link_cache and vectorized:
            from .vectorized import VectorizedLinkCache

            self._gain_cache: Optional[LinkGainCache] = VectorizedLinkCache(self)
            self._vec_cache = self._gain_cache
        else:
            self._gain_cache = LinkGainCache(self) if link_cache else None
            self._vec_cache = None
        self.vectorized = self._vec_cache is not None
        if band_sharding and not self.vectorized:
            raise ValueError(
                "band_sharding requires the vectorized link cache "
                "(vectorized=True, link_cache=True)"
            )
        self.band_sharding = bool(band_sharding)
        if sharded_scheduler is None:
            sharded_scheduler = self.vectorized
        elif sharded_scheduler and not self.vectorized:
            raise ValueError(
                "sharded_scheduler requires the vectorized link cache "
                "(vectorized=True, link_cache=True)"
            )
        self.sharded_scheduler = bool(sharded_scheduler)
        #: channel_mhz -> event-queue shard index (lazily registered).
        self._band_shards: Dict[float, int] = {}
        self._link_streams: Dict[Tuple[int, int], "np.random.Generator"] = {}

    # ------------------------------------------------------------------
    def register(self, radio: "Radio") -> None:
        """Add a radio to the medium.  Called by ``Radio.__init__``."""
        if id(radio) in self._radio_ids:
            raise ValueError(f"radio {radio.name!r} registered twice")
        self._radio_ids.add(id(radio))
        self._radios.append(radio)
        self._radios_snapshot = None
        if self.sharded_scheduler:
            radio.event_shard = self._band_shard(radio.channel_mhz)
        if self._gain_cache is not None:
            # The new radio may be audible to already-cached sources:
            # fold it into each cached set in place (bit-identical to a
            # full rebuild, see LinkGainCache.register_radio).
            self._gain_cache.register_radio(radio)

    @property
    def radios(self) -> Tuple["Radio", ...]:
        """All registered radios (immutable snapshot, cached between
        registrations so hot loops do not copy the list on every access)."""
        snapshot = self._radios_snapshot
        if snapshot is None:
            snapshot = self._radios_snapshot = tuple(self._radios)
        return snapshot

    def _band_shard(self, channel_mhz: float) -> int:
        """Event-queue shard for a frequency band (registered lazily)."""
        shard = self._band_shards.get(channel_mhz)
        if shard is None:
            shard = self.sim.add_event_shard()
            self._band_shards[channel_mhz] = shard
        return shard

    def invalidate_link_cache(self) -> None:
        """Drop cached link budgets after a radio position change."""
        if self._gain_cache is not None:
            self._gain_cache.invalidate()

    def link_fading_stream(
        self, source: "Radio", receiver: "Radio"
    ) -> "np.random.Generator":
        """The per-link fading stream for ``source`` → ``receiver``.

        Keyed on the radio names so a fixed seed reproduces the same draw
        sequence regardless of registration order, culling, or how many
        other links exist.
        """
        key = (id(source), id(receiver))
        stream = self._link_streams.get(key)
        if stream is None:
            stream = self.rng.stream(f"fading.{source.name}.{receiver.name}")
            self._link_streams[key] = stream
        return stream

    def link_fading_streams(
        self, source: "Radio", receivers: Sequence["Radio"]
    ) -> List["np.random.Generator"]:
        """Per-link fading streams for ``source`` → each of ``receivers``.

        Same streams (same cache, same ``fading.{src}.{dst}`` names) as
        :meth:`link_fading_stream`, with the misses created through the
        batched :meth:`~repro.sim.rng.RngStreams.stream_many` derivation
        — one vectorized seed computation for the whole fanout instead of
        ~20 µs of ``SeedSequence`` machinery per link.
        """
        link_streams = self._link_streams
        source_id = id(source)
        missing = [
            receiver
            for receiver in receivers
            if (source_id, id(receiver)) not in link_streams
        ]
        if missing:
            prefix = f"fading.{source.name}."
            streams = self.rng.stream_many(
                [prefix + receiver.name for receiver in missing]
            )
            for receiver, stream in zip(missing, streams):
                link_streams[(source_id, id(receiver))] = stream
        return [
            link_streams[(source_id, id(receiver))] for receiver in receivers
        ]

    # ------------------------------------------------------------------
    def _audible_entries(
        self, source: "Radio", tx_power_dbm: float
    ) -> List[AudibleEntry]:
        if self._gain_cache is not None:
            return self._gain_cache.audible_entries(source, tx_power_dbm)
        # Reference path: consult the path-loss model for every radio.
        path_loss = self.path_loss
        entries: List[AudibleEntry] = []
        for radio in self._radios:
            if radio is source:
                continue
            mean_rss = path_loss.received_power_dbm(
                tx_power_dbm, source.position, radio.position
            )
            entries.append((radio, mean_rss, self.link_fading_stream(source, radio)))
        return entries

    def begin_transmission(
        self,
        source: "Radio",
        frame: Frame,
        channel_mhz: float,
        tx_power_dbm: float,
        on_complete: Callable[[Transmission], None],
    ) -> Transmission:
        """Put ``frame`` on the air and fan it out to audible receivers.

        ``on_complete`` fires at end-of-airtime, *after* receivers have been
        told the signal ended (same timestamp, later priority ordering is
        guaranteed by scheduling receiver ends first).
        """
        sim = self.sim
        now = sim.now
        airtime = frame.airtime_s
        transmission = Transmission(
            source=source,
            frame=frame,
            channel_mhz=channel_mhz,
            tx_power_dbm=tx_power_dbm,
            start_time=now,
            end_time=now + airtime,
        )
        trace = sim.trace
        if trace.enabled:
            trace.emit(
                "tx_start",
                source=source.name,
                frame=frame.frame_id,
                channel=channel_mhz,
                power=tx_power_dbm,
                airtime=airtime,
            )
        obs = sim.obs
        if obs is not None:
            obs.on_transmission(source.name, channel_mhz, airtime)
        floor = self.delivery_floor_dbm
        fading = self.fading
        delivered: List[Tuple["Radio", Signal]] = []
        vec = self._vec_cache
        if vec is not None and self.sharded_scheduler:
            # Batched delivery (DESIGN.md §15): one vector add for the
            # per-packet RSS column, then a tight loop over the survivors
            # that inlines Radio.on_signal_start/_add_signal against the
            # FanoutBatch's precomputed gain columns.  Every float
            # operation (mean+draw add, floor compare, 10**(rss/10),
            # gain multiplies, sense-sum accumulation) mirrors the scalar
            # path operand-for-operand, so accumulator bits and traces
            # are identical — gated by `repro check diff` and the
            # whole-scene sharded-vs-unsharded property test.
            batch = vec.fanout_batch(source, tx_power_dbm, channel_mhz)
            radios = batch.radios
            if radios:
                draws = fading.sample_db_many(batch.streams)
                rss_arr = batch.means + np.asarray(draws)
                keep = rss_arr >= floor
                if keep.all():
                    indices = range(len(radios))
                else:
                    indices = np.nonzero(keep)[0].tolist()
                rss_values = rss_arr.tolist()
                decode_gains = batch.decode_gains
                sense_gains = batch.sense_gains
                co_channel = batch.co_channel
                inline = batch.inline
                checks = sim.checks
                append = delivered.append
                for i in indices:
                    radio = radios[i]
                    rss = rss_values[i]
                    if not inline[i]:
                        # Subclass with custom lock semantics: deliver
                        # through its own on_signal_start, exactly as the
                        # unsharded list path does.
                        signal = Signal(transmission, rss)
                        radio.on_signal_start(signal)
                        append((radio, signal))
                        continue
                    signal = Signal.__new__(Signal)
                    signal.transmission = transmission
                    signal.rx_power_dbm = rss
                    mw = 10.0 ** (rss / 10.0)
                    signal.rx_power_mw = mw
                    signal.channel_mhz = channel_mhz
                    signal.decode_mw = mw * decode_gains[i]
                    sense_mw = mw * sense_gains[i]
                    signal.sense_mw = sense_mw
                    reception = radio.current_reception
                    if reception is not None:
                        # Close the elapsed segment under the old
                        # interference set before this signal counts.
                        reception.on_interference_change()
                    radio.active_signals.append(signal)
                    sense_sum = radio._sense_sum_mw + sense_mw
                    radio._sense_sum_mw = sense_sum
                    radio._sense_history.append(
                        (now, radio._noise_mw + sense_sum)
                    )
                    if checks is not None:
                        checks.on_accumulator_update(radio)
                    if reception is None and co_channel[i]:
                        radio._maybe_lock(signal)
                    append((radio, signal))
        elif vec is not None:
            # Batched fan-out: parallel (radios, means, streams) lists and
            # one sample_db_many call per transmission.  Draw values, draw
            # order per stream, delivery order and float operations are
            # identical to the scalar loop below.
            if self.band_sharding:
                radios, means, streams = vec.sharded_fanout_lists(
                    source, tx_power_dbm, channel_mhz
                )
            else:
                radios, means, streams = vec.fanout_lists(source, tx_power_dbm)
            append = delivered.append
            draws = fading.sample_db_many(streams)
            for radio, mean_rss, draw in zip(radios, means, draws):
                rss = mean_rss + draw
                if rss < floor:
                    continue
                signal = Signal(transmission, rss)
                radio.on_signal_start(signal)
                append((radio, signal))
        else:
            for radio, mean_rss, stream in self._audible_entries(
                source, tx_power_dbm
            ):
                rss = mean_rss + fading.sample_db(stream)
                if rss < floor:
                    continue
                signal = Signal(transmission, rss)
                radio.on_signal_start(signal)
                delivered.append((radio, signal))
        if delivered:
            # One batched end event for the whole fan-out: the per-receiver
            # notifications would have been scheduled consecutively (same
            # time, same priority, adjacent sequence numbers), so invoking
            # them in order from a single event preserves the total order
            # while keeping heap traffic O(1) per transmission.
            def _end_all() -> None:
                for radio, signal in delivered:
                    radio.on_signal_end(signal)

            # Band-local events ride the source's band shard (None: main
            # heap).  Placement never affects dispatch order — see
            # repro.sim.events — it only isolates per-band heap churn.
            sim.schedule(
                airtime, _end_all, priority=PRIORITY_SIGNAL_END,
                tag="signal_end", shard=source.event_shard,
            )
        sim.schedule(
            airtime,
            lambda: on_complete(transmission),
            priority=PRIORITY_SIGNAL_END + 1,
            tag="tx_end",
            shard=source.event_shard,
        )
        return transmission
