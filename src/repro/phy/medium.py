"""The shared wireless medium.

The medium knows every radio, the path-loss model and the fading model.
When a radio begins transmitting, the medium computes the received power at
every other radio (path loss + per-packet fading), delivers a
``signal start`` notification immediately and schedules the matching
``signal end``.  Radios decide for themselves what a signal means to them
(lockable co-channel frame vs. inter-channel interference) — the medium is
channel-agnostic and simply carries centre frequencies around.

Event ordering: at identical timestamps, signal *ends* fire before signal
*starts* (priority 0 vs 1) so that back-to-back transmissions do not appear
to overlap for an instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from ..sim.rng import RngStreams
from ..sim.simulator import Simulator
from ..sim.units import dbm_to_mw
from .fading import FadingModel, NoFading
from .frame import Frame
from .propagation import PathLossModel

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio

__all__ = ["Transmission", "Signal", "Medium", "PRIORITY_SIGNAL_END", "PRIORITY_SIGNAL_START"]

PRIORITY_SIGNAL_END = 0
PRIORITY_SIGNAL_START = 1


@dataclass
class Transmission:
    """One frame on the air, as seen by the transmitter."""

    source: "Radio"
    frame: Frame
    channel_mhz: float
    tx_power_dbm: float
    start_time: float
    end_time: float

    @property
    def airtime_s(self) -> float:
        return self.end_time - self.start_time


class Signal:
    """A transmission as observed by one receiver (with its own RSS)."""

    __slots__ = ("transmission", "rx_power_dbm", "rx_power_mw")

    def __init__(self, transmission: Transmission, rx_power_dbm: float) -> None:
        self.transmission = transmission
        self.rx_power_dbm = rx_power_dbm
        self.rx_power_mw = dbm_to_mw(rx_power_dbm)

    @property
    def channel_mhz(self) -> float:
        return self.transmission.channel_mhz

    @property
    def frame(self) -> Frame:
        return self.transmission.frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Signal frame={self.frame.frame_id} ch={self.channel_mhz} MHz "
            f"rss={self.rx_power_dbm:.1f} dBm>"
        )


class Medium:
    """Registry of radios plus signal delivery.

    Parameters
    ----------
    sim:
        The simulation kernel.
    path_loss:
        Large-scale propagation model.
    fading:
        Per-packet variation model (defaults to none).
    rng:
        Named RNG streams; fading draws come from the ``"fading"`` stream.
    delivery_floor_dbm:
        Signals below this received power are not delivered at all (they
        would be ~20 dB under the noise floor); keeps event counts linear in
        the number of *audible* receivers.
    """

    def __init__(
        self,
        sim: Simulator,
        path_loss: PathLossModel,
        fading: Optional[FadingModel] = None,
        rng: Optional[RngStreams] = None,
        delivery_floor_dbm: float = -115.0,
    ) -> None:
        self.sim = sim
        self.path_loss = path_loss
        self.fading = fading if fading is not None else NoFading()
        self.rng = rng if rng is not None else RngStreams(0)
        self.delivery_floor_dbm = delivery_floor_dbm
        self._radios: List["Radio"] = []
        self._fading_stream = self.rng.stream("fading")

    # ------------------------------------------------------------------
    def register(self, radio: "Radio") -> None:
        """Add a radio to the medium.  Called by ``Radio.__init__``."""
        if radio in self._radios:
            raise ValueError(f"radio {radio.name!r} registered twice")
        self._radios.append(radio)

    @property
    def radios(self) -> List["Radio"]:
        return list(self._radios)

    # ------------------------------------------------------------------
    def begin_transmission(
        self,
        source: "Radio",
        frame: Frame,
        channel_mhz: float,
        tx_power_dbm: float,
        on_complete: Callable[[Transmission], None],
    ) -> Transmission:
        """Put ``frame`` on the air and fan it out to audible receivers.

        ``on_complete`` fires at end-of-airtime, *after* receivers have been
        told the signal ended (same timestamp, later priority ordering is
        guaranteed by scheduling receiver ends first).
        """
        now = self.sim.now
        transmission = Transmission(
            source=source,
            frame=frame,
            channel_mhz=channel_mhz,
            tx_power_dbm=tx_power_dbm,
            start_time=now,
            end_time=now + frame.airtime_s,
        )
        self.sim.trace.emit(
            "tx_start",
            source=source.name,
            frame=frame.frame_id,
            channel=channel_mhz,
            power=tx_power_dbm,
            airtime=frame.airtime_s,
        )
        for radio in self._radios:
            if radio is source:
                continue
            mean_rss = self.path_loss.received_power_dbm(
                tx_power_dbm, source.position, radio.position
            )
            rss = mean_rss + self.fading.sample_db(self._fading_stream)
            if rss < self.delivery_floor_dbm:
                continue
            signal = Signal(transmission, rss)
            radio.on_signal_start(signal)
            self.sim.schedule(
                frame.airtime_s,
                lambda r=radio, s=signal: r.on_signal_end(s),
                priority=PRIORITY_SIGNAL_END,
                tag="signal_end",
            )
        self.sim.schedule(
            frame.airtime_s,
            lambda: on_complete(transmission),
            priority=PRIORITY_SIGNAL_END + 1,
            tag="tx_end",
        )
        return transmission
