"""Large-scale propagation (path loss) models.

The testbed in the paper is an indoor MicaZ deployment; we default to a
log-distance model with an indoor exponent.  All models map a transmitter
position, receiver position and transmit power to a mean received power in
dBm; small-scale per-packet variation is layered on separately
(:mod:`repro.phy.fading`).

Batched evaluation
------------------
:meth:`PathLossModel.received_power_dbm_batch` evaluates one transmitter
against an ``(n, 2)`` array of receiver positions in a single numpy call.
The batched result agrees with the scalar method to within a few ulp but
is **not guaranteed bit-identical** — numpy's SIMD transcendentals
(``log10``/``hypot``) may round differently from libm.  The vectorized
medium therefore uses batched values only for conservative *candidate
preselection* (with a guard band far wider than any SIMD rounding
difference) and always re-derives the exact link budget through the
scalar method; see DESIGN.md §13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = [
    "Position",
    "distance",
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "FixedRssMatrix",
]

Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two planar positions, in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class PathLossModel:
    """Interface: mean received power for a transmitter/receiver pair."""

    def received_power_dbm(
        self, tx_power_dbm: float, tx_pos: Position, rx_pos: Position
    ) -> float:
        raise NotImplementedError

    def received_power_dbm_batch(
        self, tx_power_dbm: float, tx_pos: Position, rx_xy: "np.ndarray"
    ) -> "np.ndarray":
        """Mean received power at every row of ``rx_xy`` (shape ``(n, 2)``).

        The base implementation loops over the scalar method (bit-identical
        by construction); models with closed-form losses override it with a
        single numpy evaluation that may differ from the scalar path by a
        few ulp (see module docstring).
        """
        import numpy as np

        out = np.empty(len(rx_xy))
        for i, row in enumerate(rx_xy):
            out[i] = self.received_power_dbm(
                tx_power_dbm, tx_pos, (row[0], row[1])
            )
        return out

    def path_loss_db(self, tx_pos: Position, rx_pos: Position) -> float:
        """Loss in dB between the two positions."""
        return -self.received_power_dbm(0.0, tx_pos, rx_pos)


@dataclass(frozen=True)
class FreeSpacePathLoss(PathLossModel):
    """Friis free-space loss at 2.4 GHz: ``PL(d) = PL0 + 20 log10(d/d0)``."""

    reference_loss_db: float = 40.2  # at 1 m, 2.44 GHz
    reference_distance_m: float = 1.0
    min_distance_m: float = 0.1

    def received_power_dbm(
        self, tx_power_dbm: float, tx_pos: Position, rx_pos: Position
    ) -> float:
        d = max(distance(tx_pos, rx_pos), self.min_distance_m)
        loss = self.reference_loss_db + 20.0 * math.log10(
            d / self.reference_distance_m
        )
        return tx_power_dbm - loss

    def received_power_dbm_batch(
        self, tx_power_dbm: float, tx_pos: Position, rx_xy: "np.ndarray"
    ) -> "np.ndarray":
        import numpy as np

        d = np.hypot(rx_xy[:, 0] - tx_pos[0], rx_xy[:, 1] - tx_pos[1])
        np.maximum(d, self.min_distance_m, out=d)
        loss = self.reference_loss_db + 20.0 * np.log10(
            d / self.reference_distance_m
        )
        return tx_power_dbm - loss


@dataclass(frozen=True)
class LogDistancePathLoss(PathLossModel):
    """Log-distance model: ``PL(d) = PL0 + 10 n log10(d/d0)``.

    The default exponent ``n = 3.0`` is typical for an indoor office at
    2.4 GHz and is the model default used by all paper experiments.
    """

    exponent: float = 3.0
    reference_loss_db: float = 40.2
    reference_distance_m: float = 1.0
    min_distance_m: float = 0.1

    def received_power_dbm(
        self, tx_power_dbm: float, tx_pos: Position, rx_pos: Position
    ) -> float:
        d = max(distance(tx_pos, rx_pos), self.min_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * math.log10(
            d / self.reference_distance_m
        )
        return tx_power_dbm - loss

    def received_power_dbm_batch(
        self, tx_power_dbm: float, tx_pos: Position, rx_xy: "np.ndarray"
    ) -> "np.ndarray":
        import numpy as np

        d = np.hypot(rx_xy[:, 0] - tx_pos[0], rx_xy[:, 1] - tx_pos[1])
        np.maximum(d, self.min_distance_m, out=d)
        loss = self.reference_loss_db + (10.0 * self.exponent) * np.log10(
            d / self.reference_distance_m
        )
        return tx_power_dbm - loss

    def distance_for_rss(self, tx_power_dbm: float, rss_dbm: float) -> float:
        """Distance at which the mean received power equals ``rss_dbm``.

        Useful for building topologies with prescribed link budgets.
        """
        loss = tx_power_dbm - rss_dbm
        exponent_term = (loss - self.reference_loss_db) / (10.0 * self.exponent)
        return self.reference_distance_m * (10.0 ** exponent_term)


class FixedRssMatrix(PathLossModel):
    """A path-loss 'model' backed by explicit per-pair losses.

    Tests and calibration scenarios sometimes need exact control over every
    link budget; this model maps position pairs to a fixed loss with an
    optional default.
    """

    def __init__(self, default_loss_db: float = 200.0) -> None:
        self._losses: dict = {}
        self.default_loss_db = default_loss_db

    def set_loss(self, tx_pos: Position, rx_pos: Position, loss_db: float) -> None:
        self._losses[(tuple(tx_pos), tuple(rx_pos))] = loss_db

    def set_symmetric_loss(
        self, pos_a: Position, pos_b: Position, loss_db: float
    ) -> None:
        self.set_loss(pos_a, pos_b, loss_db)
        self.set_loss(pos_b, pos_a, loss_db)

    def received_power_dbm(
        self, tx_power_dbm: float, tx_pos: Position, rx_pos: Position
    ) -> float:
        loss = self._losses.get(
            (tuple(tx_pos), tuple(rx_pos)), self.default_loss_db
        )
        return tx_power_dbm - loss

    def received_power_dbm_batch(
        self, tx_power_dbm: float, tx_pos: Position, rx_xy: "np.ndarray"
    ) -> "np.ndarray":
        # Exact: dict lookups, no floating-point evaluation at all.
        import numpy as np

        losses = self._losses
        default = self.default_loss_db
        key = tuple(tx_pos)
        out = np.empty(len(rx_xy))
        for i, row in enumerate(rx_xy):
            out[i] = tx_power_dbm - losses.get(
                (key, (row[0], row[1])), default
            )
        return out
