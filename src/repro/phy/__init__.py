"""Radio / channel substrate: CC2420-parameterised 802.15.4 PHY simulation.

Layering (bottom up):

- :mod:`~repro.phy.constants` — 802.15.4 / CC2420 datasheet numbers.
- :mod:`~repro.phy.spectrum` — bands and non-orthogonal channel plans.
- :mod:`~repro.phy.propagation` / :mod:`~repro.phy.fading` — link budgets.
- :mod:`~repro.phy.mask` — spectral leakage (the calibrated heart of the
  non-orthogonal interference model).
- :mod:`~repro.phy.modulation` — BER-vs-SINR curves.
- :mod:`~repro.phy.frame` — frame structure and airtime.
- :mod:`~repro.phy.medium` / :mod:`~repro.phy.radio` /
  :mod:`~repro.phy.reception` / :mod:`~repro.phy.errors` — the runtime.
"""

from .constants import (
    BIT_RATE_BPS,
    CCA_DURATION_S,
    DEFAULT_CCA_THRESHOLD_DBM,
    NOISE_FLOOR_DBM,
    RX_SENSITIVITY_DBM,
    TURNAROUND_TIME_S,
    UNIT_BACKOFF_PERIOD_S,
    channel_center_mhz,
    pa_level_for_power,
)
from .errors import ErrorStats, FrameReception
from .fading import FadingModel, LogNormalFading, NoFading
from .frame import Frame, frame_airtime_s, payload_for_airtime
from .mask import (
    CC2420_LEAKAGE_POINTS,
    CCA_EXTRA_REJECTION_DB,
    PerfectOrthogonalMask,
    PiecewiseLinearMask,
    ShiftedMask,
    SpectralMask,
    default_cca_mask,
    default_mask,
)
from .medium import Medium, Signal, Transmission
from .modulation import dbpsk_ber, dqpsk_ber, oqpsk_ber, packet_error_rate
from .propagation import (
    FixedRssMatrix,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
    Position,
    distance,
)
from .radio import Radio, RadioConfig, RadioState
from .reception import Reception
from .spectrum import EVALUATION_BAND, MOTIVATION_BAND, Band, ChannelPlan

__all__ = [
    "BIT_RATE_BPS",
    "CCA_DURATION_S",
    "DEFAULT_CCA_THRESHOLD_DBM",
    "NOISE_FLOOR_DBM",
    "RX_SENSITIVITY_DBM",
    "TURNAROUND_TIME_S",
    "UNIT_BACKOFF_PERIOD_S",
    "channel_center_mhz",
    "pa_level_for_power",
    "ErrorStats",
    "FrameReception",
    "FadingModel",
    "LogNormalFading",
    "NoFading",
    "Frame",
    "frame_airtime_s",
    "payload_for_airtime",
    "CC2420_LEAKAGE_POINTS",
    "CCA_EXTRA_REJECTION_DB",
    "PerfectOrthogonalMask",
    "PiecewiseLinearMask",
    "ShiftedMask",
    "SpectralMask",
    "default_cca_mask",
    "default_mask",
    "Medium",
    "Signal",
    "Transmission",
    "dbpsk_ber",
    "dqpsk_ber",
    "oqpsk_ber",
    "packet_error_rate",
    "FixedRssMatrix",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "PathLossModel",
    "Position",
    "distance",
    "Radio",
    "RadioConfig",
    "RadioState",
    "Reception",
    "EVALUATION_BAND",
    "MOTIVATION_BAND",
    "Band",
    "ChannelPlan",
]
