"""Small-scale per-packet channel variation.

Real testbed links do not see a single deterministic RSS: multipath,
orientation and interference make the received power of *each packet* vary
around the path-loss mean.  This spread is load-bearing for the paper's
Fig. 4 — the collided-packet receive rate (CPRR) is a *smooth* function of
channel frequency distance only because per-packet SINR is spread around its
mean (a deterministic SINR would make CPRR a step function, because the
802.15.4 BER curve is extremely steep).

We model the variation as a zero-mean log-normal term (in dB) drawn
independently per (transmission, receiver) pair.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FadingModel", "NoFading", "LogNormalFading"]


class FadingModel:
    """Interface: per-packet dB offset applied on top of path loss."""

    def sample_db(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def max_gain_db(self) -> float:
        """Largest dB offset :meth:`sample_db` can ever return.

        Used by the medium's audible-set culling: a receiver whose mean RSS
        plus this headroom still misses the delivery floor can be skipped
        without changing any observable outcome.  Models with unbounded
        support must return ``inf`` (which disables culling entirely).
        """
        return float("inf")

    def sample_db_many(self, rngs) -> list:
        """One draw per generator in ``rngs`` (one per link stream).

        Must be bit-identical to calling :meth:`sample_db` once per
        generator in order — each per-link stream advances by exactly one
        draw.  The default loops; overrides exist purely to shave Python
        dispatch off the medium's fanout hot path.
        """
        return [self.sample_db(rng) for rng in rngs]


class NoFading(FadingModel):
    """Deterministic channel: every packet sees exactly the mean RSS."""

    def sample_db(self, rng: np.random.Generator) -> float:
        return 0.0

    def max_gain_db(self) -> float:
        return 0.0

    def sample_db_many(self, rngs) -> list:
        return [0.0] * len(rngs)


class LogNormalFading(FadingModel):
    """Gaussian-in-dB per-packet variation.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the per-packet offset.  4 dB reproduces the
        gradual CPRR-vs-CFD transition of Fig. 4; testbeds commonly report
        3-6 dB of per-packet RSS spread indoors.
    clip_db:
        Offsets are clipped to ±``clip_db`` to keep extreme draws from
        creating physically absurd link budgets.
    """

    #: Largest buffer refill.  A scalar ``Generator.normal`` call costs
    #: ~2 us of numpy dispatch; batching amortises that to ~0.3 us/draw,
    #: which matters because fading is sampled once per (transmission,
    #: audible receiver) pair.
    BUFFER_DRAWS = 128

    #: First refill per stream.  Buffers grow geometrically (×4 per
    #: refill, capped at :data:`BUFFER_DRAWS`): 50k-mote scenes hold 10^5+
    #: link streams most of which are sampled a handful of times per run,
    #: so filling 128 draws up front wastes most of the generator work at
    #: start-up.  Growth is invisible to fixed-seed reproducibility:
    #: ``standard_normal(n)`` consumes the bit stream identically
    #: regardless of how the n draws are chunked (pinned by tests).
    BUFFER_DRAWS_INITIAL = 8

    def __init__(self, sigma_db: float = 4.0, clip_db: float = 12.0) -> None:
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {sigma_db}")
        if clip_db <= 0:
            raise ValueError(f"clip_db must be > 0, got {clip_db}")
        self.sigma_db = sigma_db
        self.clip_db = clip_db
        #: Per-generator draw buffers: ``id(rng) -> [rng, draws, index,
        #: capacity]``.  The generator reference is stored in the value so
        #: the id can never be recycled while its buffer is alive.
        self._buffers: dict = {}

    def _refill(self, rng: np.random.Generator, entry) -> list:
        """(Re)fill a stream's buffer, growing its capacity geometrically."""
        if entry is None:
            capacity = self.BUFFER_DRAWS_INITIAL
            entry = [rng, None, 0, capacity]
            self._buffers[id(rng)] = entry
        else:
            capacity = entry[3] * 4
            if capacity > self.BUFFER_DRAWS:
                capacity = self.BUFFER_DRAWS
            entry[3] = capacity
        draws = (rng.standard_normal(capacity) * self.sigma_db).tolist()
        entry[1] = draws
        entry[2] = 0
        return entry

    def sample_db(self, rng: np.random.Generator) -> float:
        if self.sigma_db == 0.0:
            return 0.0
        # Buffered scalar draws.  ``standard_normal(n) * sigma`` consumes
        # the generator's bit stream exactly as n successive
        # ``normal(0, sigma)`` calls would and produces bit-identical
        # doubles, so buffering is invisible to fixed-seed reproducibility
        # (asserted by tests/phy/test_perf_layer.py).  Each per-link stream
        # is drawn from *only* through this model, so read-ahead cannot
        # interleave with other consumers.
        entry = self._buffers.get(id(rng))
        if entry is None or entry[2] >= entry[3]:
            entry = self._refill(rng, entry)
        index = entry[2]
        draw = entry[1][index]
        entry[2] = index + 1
        # Branchy clipping: ~10x cheaper than np.clip on a scalar.
        clip = self.clip_db
        if draw > clip:
            return clip
        if draw < -clip:
            return -clip
        return draw

    def max_gain_db(self) -> float:
        return self.clip_db if self.sigma_db > 0.0 else 0.0

    def sample_db_many(self, rngs) -> list:
        # Same buffers and draw order as sample_db, with the per-call
        # attribute lookups hoisted out of the loop.  Each stream advances
        # by exactly one draw, so the result is bit-identical to a loop of
        # scalar sample_db calls (pinned by tests).
        if self.sigma_db == 0.0:
            return [0.0] * len(rngs)
        buffers = self._buffers
        refill = self._refill
        clip = self.clip_db
        neg_clip = -clip
        out = []
        append = out.append
        for rng in rngs:
            entry = buffers.get(id(rng))
            if entry is None or entry[2] >= entry[3]:
                entry = refill(rng, entry)
            index = entry[2]
            draw = entry[1][index]
            entry[2] = index + 1
            if draw > clip:
                draw = clip
            elif draw < neg_clip:
                draw = neg_clip
            append(draw)
        return out
