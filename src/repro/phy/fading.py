"""Small-scale per-packet channel variation.

Real testbed links do not see a single deterministic RSS: multipath,
orientation and interference make the received power of *each packet* vary
around the path-loss mean.  This spread is load-bearing for the paper's
Fig. 4 — the collided-packet receive rate (CPRR) is a *smooth* function of
channel frequency distance only because per-packet SINR is spread around its
mean (a deterministic SINR would make CPRR a step function, because the
802.15.4 BER curve is extremely steep).

We model the variation as a zero-mean log-normal term (in dB) drawn
independently per (transmission, receiver) pair.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FadingModel", "NoFading", "LogNormalFading"]


class FadingModel:
    """Interface: per-packet dB offset applied on top of path loss."""

    def sample_db(self, rng: np.random.Generator) -> float:
        raise NotImplementedError


class NoFading(FadingModel):
    """Deterministic channel: every packet sees exactly the mean RSS."""

    def sample_db(self, rng: np.random.Generator) -> float:
        return 0.0


class LogNormalFading(FadingModel):
    """Gaussian-in-dB per-packet variation.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the per-packet offset.  4 dB reproduces the
        gradual CPRR-vs-CFD transition of Fig. 4; testbeds commonly report
        3-6 dB of per-packet RSS spread indoors.
    clip_db:
        Offsets are clipped to ±``clip_db`` to keep extreme draws from
        creating physically absurd link budgets.
    """

    def __init__(self, sigma_db: float = 4.0, clip_db: float = 12.0) -> None:
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {sigma_db}")
        if clip_db <= 0:
            raise ValueError(f"clip_db must be > 0, got {clip_db}")
        self.sigma_db = sigma_db
        self.clip_db = clip_db

    def sample_db(self, rng: np.random.Generator) -> float:
        if self.sigma_db == 0.0:
            return 0.0
        draw = rng.normal(0.0, self.sigma_db)
        return float(np.clip(draw, -self.clip_db, self.clip_db))
