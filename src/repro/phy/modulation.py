"""Bit-error-rate models for the PHYs in the paper.

- 802.15.4 2.4 GHz O-QPSK with DSSS (the MicaZ/CC2420 radio): the standard
  16-ary quasi-orthogonal formula (Zuniga & Krishnamachari, from the IEEE
  802.15.4 standard's PER analysis).
- 802.11b DBPSK/DQPSK/CCK: used only by the Fig. 2 contrast experiment.

All functions take the *post-filter* SINR (signal over in-band interference
plus noise) in dB and return a probability per bit.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..sim.units import db_to_linear
from .constants import BIT_RATE_BPS, NOISE_BANDWIDTH_MHZ

__all__ = [
    "oqpsk_ber",
    "dbpsk_ber",
    "dqpsk_ber",
    "packet_error_rate",
    "expected_bit_errors",
    "PROCESSING_GAIN_DB",
    "IMPLEMENTATION_LOSS_DB",
    "EFFECTIVE_SNR_OFFSET_DB",
]

#: DSSS processing gain of the 2.4 GHz PHY: 2 MHz chip bandwidth over
#: 250 kbps bit rate = 8x = 9.03 dB.
PROCESSING_GAIN_DB = 10.0 * math.log10(
    NOISE_BANDWIDTH_MHZ * 1e6 / BIT_RATE_BPS
)

#: Real CC2420 receivers fall far short of the theoretical DSSS gain when
#: the impairment is *another in-band signal* rather than white noise: the
#: datasheet quotes co-channel rejection of about -3 dB (an interferer only
#: a few dB below the carrier already breaks 1 % PER) and a sensitivity of
#: -94 dBm over a ~-100 dBm noise floor (i.e. ~6 dB SNR at the 1 % PER
#: point for a 20-byte PSDU).  We fold both effects into a single
#: implementation-loss term calibrated against those two datasheet anchors.
IMPLEMENTATION_LOSS_DB = 13.8

#: Net mapping from in-band SINR to the effective Eb/N0 fed to the 16-ary
#: curve.  With this offset: PER(111-byte MPDU) = 1 % at ~6 dB SINR
#: (sensitivity anchor) and an equal-power co-channel collision (SINR =
#: 0 dB) is reliably corrupted (co-channel rejection anchor).
EFFECTIVE_SNR_OFFSET_DB = PROCESSING_GAIN_DB - IMPLEMENTATION_LOSS_DB

_BINOMIAL_16 = [math.comb(16, k) for k in range(17)]


@lru_cache(maxsize=100_000)
def _oqpsk_ber_cached(snr_mdb: int) -> float:
    """O-QPSK BER for an Eb/N0 given in milli-dB (cache key)."""
    snr_db = snr_mdb / 1000.0
    snr = db_to_linear(snr_db)
    total = 0.0
    for k in range(2, 17):
        total += ((-1) ** k) * _BINOMIAL_16[k] * math.exp(20.0 * snr * (1.0 / k - 1.0))
    ber = (8.0 / 15.0) * (1.0 / 16.0) * total
    return min(max(ber, 0.0), 0.5)


def oqpsk_ber(sinr_db: float) -> float:
    """BER of the 802.15.4 O-QPSK DSSS PHY at in-band SINR ``sinr_db``.

    Callers pass the raw in-band SINR (what the radio front-end sees); the
    processing gain and implementation loss (see
    :data:`EFFECTIVE_SNR_OFFSET_DB`) are applied internally.
    """
    ebn0_db = sinr_db + EFFECTIVE_SNR_OFFSET_DB
    # Quantise to milli-dB for the cache; the BER curve is smooth at that
    # resolution and the cache removes ~all exp() work from the hot path.
    if ebn0_db > 30.0:
        return 0.0
    if ebn0_db < -20.0:
        return 0.5
    return _oqpsk_ber_cached(int(round(ebn0_db * 1000.0)))


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def dbpsk_ber(sinr_db: float, processing_gain: float = 11.0) -> float:
    """BER of 802.11b 1 Mbps DBPSK with Barker spreading.

    ``processing_gain`` is the linear chip-over-bit ratio (11 for Barker).
    """
    snr = db_to_linear(sinr_db) * processing_gain
    return min(0.5, 0.5 * math.exp(-snr))


def dqpsk_ber(sinr_db: float, processing_gain: float = 5.5) -> float:
    """Approximate BER of 802.11b 2 Mbps DQPSK."""
    snr = db_to_linear(sinr_db) * processing_gain
    return min(0.5, _q_function(math.sqrt(2.0 * snr)))


def packet_error_rate(ber: float, n_bits: int) -> float:
    """PER for ``n_bits`` independent bits at bit error rate ``ber``."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be >= 0, got {n_bits}")
    if ber <= 0.0:
        return 0.0
    if ber >= 1.0:
        return 1.0
    return 1.0 - (1.0 - ber) ** n_bits


def expected_bit_errors(ber: float, n_bits: float) -> float:
    """Mean number of errored bits over ``n_bits``."""
    return ber * n_bits
