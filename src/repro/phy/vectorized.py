"""Struct-of-arrays batched fanout: the vectorized medium kernel.

The scalar :class:`~repro.phy.medium.LinkGainCache` builds each audible set
with one Python-level path-loss call per registered radio — O(n) model
dispatches per ``(source, tx power)`` pair, which dominates start-up cost
for 10k-node scenes.  This module keeps a contiguous numpy mirror of the
radio registry (:class:`RadioArrays`) and evaluates the mean link budget
for the *whole* registry in one batched call, then confirms the survivors
through the scalar model so cached values stay bit-identical to the scalar
cache (see DESIGN.md §13 for the full exactness argument).

Exactness
---------
Batched transcendentals (``np.log10``/``np.hypot``) may differ from libm by
a few ulp, so batch results are used **only to preselect candidates** with
a guard band (:data:`PRESELECT_GUARD_DB`) nine orders of magnitude wider
than any SIMD rounding difference; every cached ``mean_rss`` is re-derived
through ``received_power_dbm`` (the scalar path).  A radio kept by the
scalar cull condition ``mean + headroom >= floor`` therefore can never be
dropped by the preselection ``approx + headroom >= floor - guard``.

Band sharding (opt-in)
----------------------
``Medium(band_sharding=True)`` additionally drops fanout entries whose
*best-case post-mask* power cannot reach the delivery floor at the
transmission's channel::

    mean_rss + max_fading_gain - min(decode_leakage, sense_leakage) < floor

i.e. radios in frequency bands whose cross-band leakage falls below
``delivery_floor_dbm`` never see the signal at all.  Unlike the audible-set
cull this is an **approximation**: a delivered sub-floor signal still
contributes ~10^-18 mW to the receiver's power accumulators, and skipping
it perturbs those sums in the last few bits.  No CCA or SINR decision can
realistically flip (the dropped contribution sits >=60 dB under the noise
floor), and the property tests pin trace-identity on representative
scenes, but bit-exactness across *all* workloads is not guaranteed —
which is why sharding is not the default.  Co-channel links are never
dropped (zero leakage), so frame delivery itself is unaffected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from .medium import AudibleEntry, LinkGainCache

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio

__all__ = [
    "RadioArrays",
    "VectorizedLinkCache",
    "FanoutBatch",
    "PRESELECT_GUARD_DB",
]

#: Guard band (dB) subtracted from the cull floor during batched
#: preselection.  SIMD-vs-libm rounding differences are a few ulp
#: (~1e-13 dB at typical RSS magnitudes); 1e-6 dB leaves nine orders of
#: magnitude of margin while culling everything meaningfully inaudible.
PRESELECT_GUARD_DB = 1e-6

#: Parallel fanout lists: (receivers, mean RSS values, fading streams).
FanoutLists = Tuple[List["Radio"], List[float], List[object]]


class FanoutBatch:
    """Per-(source, tx power, channel) precomputed delivery columns.

    Everything the batched delivery loop in ``Medium.begin_transmission``
    needs per fanout entry, gathered once and reused for every frame:

    - ``means`` as a float64 array so the per-packet RSS (`mean + draw`)
      computes in one vector add (IEEE elementwise add — bit-identical to
      the scalar sums);
    - ``decode_gains`` / ``sense_gains`` pulled from each receiver's own
      ``_gains_for`` memo, so batched accumulator updates multiply the
      exact floats the scalar ``Radio._add_signal`` would use;
    - ``co_channel`` flags precomputing the lock-eligibility offset test;
    - ``inline`` flags marking receivers whose class uses the base
      ``Radio.on_signal_start`` — only those may take the inlined
      delivery loop; subclasses with custom lock semantics (e.g. the
      false-locking 802.11b radio) are dispatched through their own
      ``on_signal_start`` override.
    """

    __slots__ = (
        "radios", "streams", "means", "decode_gains", "sense_gains",
        "co_channel", "inline",
    )

    def __init__(
        self,
        radios: List["Radio"],
        streams: List[object],
        means: np.ndarray,
        decode_gains: List[float],
        sense_gains: List[float],
        co_channel: List[bool],
        inline: List[bool],
    ) -> None:
        self.radios = radios
        self.streams = streams
        self.means = means
        self.decode_gains = decode_gains
        self.sense_gains = sense_gains
        self.co_channel = co_channel
        self.inline = inline


class RadioArrays:
    """Contiguous struct-of-arrays mirror of a medium's radio registry.

    Holds positions and centre frequencies in flat float64 arrays (grown
    amortised-O(1)) alongside the radio objects in registration order, so
    batched kernels can run over the whole registry without touching
    per-object Python attributes.
    """

    __slots__ = ("radios", "_xy", "_channels", "_count")

    def __init__(self) -> None:
        self.radios: List["Radio"] = []
        self._xy = np.empty((16, 2))
        self._channels = np.empty(16)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def xy(self) -> np.ndarray:
        """Positions, shape ``(n, 2)`` (a view; do not mutate)."""
        return self._xy[: self._count]

    @property
    def channels_mhz(self) -> np.ndarray:
        """Centre frequencies, shape ``(n,)`` (a view; do not mutate)."""
        return self._channels[: self._count]

    def append(self, radio: "Radio") -> None:
        n = self._count
        if n == len(self._xy):
            self._xy = np.resize(self._xy, (2 * n, 2))
            self._channels = np.resize(self._channels, 2 * n)
        self._xy[n, 0] = radio.position[0]
        self._xy[n, 1] = radio.position[1]
        self._channels[n] = radio.channel_mhz
        self.radios.append(radio)
        self._count = n + 1

    def refresh(self) -> None:
        """Re-copy positions/channels from the radio objects.

        Called on cache invalidation so explicit position changes (the one
        sanctioned mutation, via ``Medium.invalidate_link_cache``) are
        reflected in the arrays."""
        xy = self._xy
        channels = self._channels
        for i, radio in enumerate(self.radios):
            xy[i, 0] = radio.position[0]
            xy[i, 1] = radio.position[1]
            channels[i] = radio.channel_mhz


class VectorizedLinkCache(LinkGainCache):
    """A :class:`LinkGainCache` whose audible sets build in one batch.

    Drop-in compatible (``audible_entries`` returns the identical entry
    list, bit for bit) and additionally serves the fanout hot path with
    parallel lists so ``Medium.begin_transmission`` can draw all fading
    samples per transmission through one ``sample_db_many`` call.
    """

    __slots__ = ("arrays", "_lists", "_sharded", "_batches")

    def __init__(self, medium) -> None:
        super().__init__(medium)
        self.arrays = RadioArrays()
        #: key -> (radios, mean_rss, streams) parallel lists.
        self._lists: Dict[Tuple[int, float], FanoutLists] = {}
        #: (key..., channel) -> band-shard filtered parallel lists.
        self._sharded: Dict[Tuple[int, float, float], FanoutLists] = {}
        #: (key..., channel) -> delivery columns for the batched loop.
        self._batches: Dict[Tuple[int, float, float], FanoutBatch] = {}

    # -- registry maintenance ------------------------------------------
    def register_radio(self, radio: "Radio") -> None:
        self.arrays.append(radio)
        super().register_radio(radio)
        # Derived lists are rebuilt lazily from the (updated) entry lists;
        # no model calls involved.
        self._lists.clear()
        self._sharded.clear()
        self._batches.clear()

    def invalidate(self) -> None:
        super().invalidate()
        self._lists.clear()
        self._sharded.clear()
        self._batches.clear()
        self.arrays.refresh()

    # -- batched build --------------------------------------------------
    def _build(self, source: "Radio", tx_power_dbm: float) -> List[AudibleEntry]:
        medium = self._medium
        headroom = medium.fading.max_gain_db()
        arrays = self.arrays
        n = len(arrays)
        if n == 0 or headroom == float("inf"):
            # Unbounded fading disables culling: every radio is audible and
            # the scalar build already does the minimal work.
            return super()._build(source, tx_power_dbm)
        path_loss = medium.path_loss
        floor = medium.delivery_floor_dbm
        approx = path_loss.received_power_dbm_batch(
            tx_power_dbm, source.position, arrays.xy
        )
        candidates = np.nonzero(
            approx >= (floor - headroom) - PRESELECT_GUARD_DB
        )[0]
        radios = arrays.radios
        survivors: List["Radio"] = []
        means: List[float] = []
        for i in candidates:
            radio = radios[i]
            if radio is source:
                continue
            # Exact confirmation: the cached mean comes from the scalar
            # model, so entries are bit-identical to LinkGainCache._build.
            mean_rss = path_loss.received_power_dbm(
                tx_power_dbm, source.position, radio.position
            )
            if mean_rss + headroom < floor:
                continue
            survivors.append(radio)
            means.append(mean_rss)
        # Batched stream creation: one vectorized seed derivation for all
        # missing links instead of one SeedSequence each (the dominant
        # first-transmission cost at 10^5-link scale).  stream_many is
        # bit-identical to per-name stream() and shares its cache.
        streams = medium.link_fading_streams(source, survivors)
        return list(zip(survivors, means, streams))

    # -- fanout hot path ------------------------------------------------
    def fanout_lists(self, source: "Radio", tx_power_dbm: float) -> FanoutLists:
        """Audible set as parallel ``(radios, mean_rss, streams)`` lists."""
        key = (id(source), tx_power_dbm)
        lists = self._lists.get(key)
        if lists is None:
            entries = self.audible_entries(source, tx_power_dbm)
            if entries:
                radios, means, streams = (list(col) for col in zip(*entries))
            else:
                radios, means, streams = [], [], []
            lists = (radios, means, streams)
            self._lists[key] = lists
        return lists

    def sharded_fanout_lists(
        self, source: "Radio", tx_power_dbm: float, channel_mhz: float
    ) -> FanoutLists:
        """Fanout lists with cross-band (sub-floor post-mask) links dropped.

        See the module docstring for the shard condition and its
        approximation caveat.  Cached per transmission channel; radio
        channels are fixed after construction (the gain memo already bakes
        in that assumption), so no epoch tracking is needed.
        """
        shard_key = (id(source), tx_power_dbm, channel_mhz)
        lists = self._sharded.get(shard_key)
        if lists is None:
            radios, means, streams = self.fanout_lists(source, tx_power_dbm)
            floor = self._medium.delivery_floor_dbm
            headroom = self._medium.fading.max_gain_db()
            kept_r: List["Radio"] = []
            kept_m: List[float] = []
            kept_s: List[object] = []
            for i, radio in enumerate(radios):
                offset = channel_mhz - radio.channel_mhz
                best_leakage = min(
                    radio.mask.leakage_db(offset),
                    radio.cca_mask.leakage_db(offset),
                )
                if means[i] + headroom - best_leakage < floor:
                    continue
                kept_r.append(radio)
                kept_m.append(means[i])
                kept_s.append(streams[i])
            lists = (kept_r, kept_m, kept_s)
            self._sharded[shard_key] = lists
        return lists

    def fanout_batch(
        self, source: "Radio", tx_power_dbm: float, channel_mhz: float
    ) -> FanoutBatch:
        """Delivery columns for the batched accumulator-update loop.

        Built from :meth:`sharded_fanout_lists` when the medium's band
        sharding is on, else from :meth:`fanout_lists`; per-receiver gains
        come from each radio's own ``_gains_for`` memo, so every float the
        batched loop multiplies is the exact object the scalar
        ``Radio._add_signal`` path would read.
        """
        key = (id(source), tx_power_dbm, channel_mhz)
        batch = self._batches.get(key)
        if batch is None:
            if self._medium.band_sharding:
                radios, means, streams = self.sharded_fanout_lists(
                    source, tx_power_dbm, channel_mhz
                )
            else:
                radios, means, streams = self.fanout_lists(source, tx_power_dbm)
            from .radio import Radio

            base_start = Radio.on_signal_start
            decode_gains: List[float] = []
            sense_gains: List[float] = []
            co_channel: List[bool] = []
            inline: List[bool] = []
            for radio in radios:
                gains = radio._gains_for(channel_mhz)
                decode_gains.append(gains[0])
                sense_gains.append(gains[1])
                offset = channel_mhz - radio.channel_mhz
                co_channel.append(
                    (offset if offset >= 0.0 else -offset)
                    <= radio._co_channel_tolerance_mhz
                )
                # Radios overriding on_signal_start (custom lock
                # semantics) must not take the inlined delivery loop.
                inline.append(type(radio).on_signal_start is base_start)
            batch = FanoutBatch(
                radios,
                streams,
                np.array(means, dtype=np.float64),
                decode_gains,
                sense_gains,
                co_channel,
                inline,
            )
            self._batches[key] = batch
        return batch
