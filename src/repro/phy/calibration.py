"""Calibration utilities: fit a leakage mask to CPRR measurements.

The default masks ship calibrated against this paper's Fig. 4, but a user
porting the simulator to a different radio (or to measurements from their
own testbed) needs the same workflow we used:

1. measure the collided-packet receive rate (CPRR) of the attacker rig at
   each channel offset of interest (:func:`measure_cprr`);
2. adjust the leakage anchors until the measured curve matches the target
   (:func:`fit_leakage_points` does a per-anchor monotone search).

The fit is deliberately simple (coordinate-wise bisection on a curve that
is monotone in each anchor) — calibration is run offline, not in a hot
path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..net.traffic import AttackerSource, SaturatedSource
from ..phy.mask import PiecewiseLinearMask
from ..sim.units import MILLISECOND

__all__ = ["measure_cprr", "fit_leakage_points"]


def measure_cprr(
    cfd_mhz: float,
    mask: PiecewiseLinearMask,
    seed: int = 1,
    duration_s: float = 8.0,
) -> float:
    """CPRR of the normal sender in the Fig. 3 attacker rig under ``mask``.

    Note: the sensing mask is irrelevant here (carrier sensing is disabled
    in the rig), so only the decode mask is passed through.
    """
    from ..experiments.metrics import snapshot_deployment
    from ..experiments.scenarios import cprr_rig

    deployment = cprr_rig(cfd_mhz, seed=seed, mask=mask)
    SaturatedSource(deployment.node("normal.s0"), "normal.r0").start()
    AttackerSource(
        deployment.node("attacker.s0"),
        "attacker.r0",
        interval_s=3.0 * MILLISECOND,
        payload_bytes=75,
    ).start()
    sim = deployment.sim
    sim.run(0.5)
    baseline = snapshot_deployment(deployment)
    sim.run(sim.now + duration_s)
    sent = deployment.node("normal.s0").mac.stats.since(
        baseline["normal.s0"]
    ).sent
    delivered = deployment.node("normal.r0").mac.stats.since(
        baseline["normal.r0"]
    ).delivered
    return delivered / sent if sent else 0.0


def fit_leakage_points(
    targets: Dict[float, float],
    initial_points: Sequence[Tuple[float, float]],
    tolerance: float = 0.03,
    max_iterations: int = 6,
    step_db: float = 4.0,
    seed: int = 1,
    duration_s: float = 6.0,
) -> List[Tuple[float, float]]:
    """Fit the anchors at the target offsets so CPRR matches ``targets``.

    Parameters
    ----------
    targets:
        ``{cfd_mhz: desired_cprr}`` — each listed offset must be an anchor
        frequency in ``initial_points``.
    initial_points:
        Starting mask anchors (the full curve, including offsets not being
        fitted).
    tolerance:
        Acceptable |measured - target| per offset.
    step_db / max_iterations:
        Bisection control: the step halves every iteration.

    Returns the adjusted anchor list (same offsets, new attenuations where
    fitted).  CPRR is monotone increasing in the anchor's attenuation, so
    a signed-step halving search converges.
    """
    points = {f: a for f, a in initial_points}
    for cfd in targets:
        if cfd not in points:
            raise ValueError(f"no anchor at {cfd} MHz to fit")

    for cfd, target in sorted(targets.items()):
        step = step_db
        for _ in range(max_iterations):
            mask = _build_mask(points)
            measured = measure_cprr(cfd, mask, seed=seed, duration_s=duration_s)
            error = measured - target
            if abs(error) <= tolerance:
                break
            # more attenuation -> less interference -> higher CPRR
            points[cfd] += step if error < 0 else -step
            points[cfd] = max(0.0, points[cfd])
            _enforce_monotone(points, cfd)
            step /= 2.0
    return sorted(points.items())


def _build_mask(points: Dict[float, float]) -> PiecewiseLinearMask:
    ordered = sorted(points.items())
    max_db = max(60.0, ordered[-1][1])
    return PiecewiseLinearMask(ordered, max_db=max_db)


def _enforce_monotone(points: Dict[float, float], changed: float) -> None:
    """Keep attenuation non-decreasing in offset after moving one anchor."""
    ordered = sorted(points)
    value = points[changed]
    for freq in ordered:
        if freq < changed and points[freq] > value:
            points[freq] = value
        if freq > changed and points[freq] < value:
            points[freq] = value
