"""Frame structure and airtime arithmetic for the 2.4 GHz 802.15.4 PHY."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .constants import (
    BIT_RATE_BPS,
    FCS_BYTES,
    MAX_MPDU_BYTES,
    MHR_BYTES,
    PHY_HEADER_BYTES,
)

__all__ = [
    "Frame",
    "frame_airtime_s",
    "ack_airtime_s",
    "payload_for_airtime",
    "reset_frame_ids",
    "ACK_MPDU_BYTES",
]

_frame_ids = itertools.count(1)


def reset_frame_ids(start: int = 1) -> None:
    """Restart the global frame-id counter.

    Frame ids exist purely to correlate trace records across transmitter
    and receivers — nothing keys on them across runs.  The differential
    oracle (:mod:`repro.check.oracle`) runs one exhibit twice in the same
    process and compares traces record-by-record, so it resets the
    counter before each leg; otherwise the second leg's ids continue
    where the first left off and every record trivially differs.
    Production code should never call this mid-run.
    """
    global _frame_ids
    _frame_ids = itertools.count(start)

#: An 802.15.4 acknowledgement MPDU: FCF (2) + sequence (1) + FCS (2).
ACK_MPDU_BYTES = 5


def frame_airtime_s(payload_bytes: int, bit_rate_bps: int = BIT_RATE_BPS) -> float:
    """On-air duration of a data frame with ``payload_bytes`` of payload.

    Includes the PHY synchronisation header, MAC header and FCS.
    """
    mpdu = MHR_BYTES + payload_bytes + FCS_BYTES
    if mpdu > MAX_MPDU_BYTES:
        raise ValueError(
            f"payload of {payload_bytes} B gives MPDU {mpdu} B > {MAX_MPDU_BYTES} B"
        )
    total_bytes = PHY_HEADER_BYTES + mpdu
    return total_bytes * 8 / bit_rate_bps


def ack_airtime_s(bit_rate_bps: int = BIT_RATE_BPS) -> float:
    """On-air duration of an acknowledgement frame (352 us at 250 kbps)."""
    return (PHY_HEADER_BYTES + ACK_MPDU_BYTES) * 8 / bit_rate_bps


def payload_for_airtime(airtime_s: float, bit_rate_bps: int = BIT_RATE_BPS) -> int:
    """Largest payload whose frame airtime does not exceed ``airtime_s``."""
    total_bytes = int(airtime_s * bit_rate_bps // 8)
    payload = total_bytes - PHY_HEADER_BYTES - MHR_BYTES - FCS_BYTES
    if payload < 0:
        raise ValueError(f"airtime {airtime_s} s is too short for any frame")
    return payload


@dataclass
class Frame:
    """A MAC frame in flight.

    Attributes
    ----------
    source:
        Identifier of the sending node.
    destination:
        Identifier of the intended receiver, or ``None`` for broadcast.
    payload_bytes:
        Application payload length; overheads are added by
        :func:`frame_airtime_s`.
    sequence:
        Per-source sequence number (set by the MAC).
    frame_id:
        Globally unique id, assigned at construction, used to correlate
        trace records across transmitter and receivers.
    bit_rate_bps:
        PHY rate used for airtime; defaults to the 802.15.4 250 kbps.  The
        802.11b contrast substrate (:mod:`repro.dot11`) overrides it.
    is_ack:
        True for acknowledgement frames (5-byte MPDU, no payload);
        constructed via :meth:`Frame.ack`.
    ack_request:
        True when the sender expects an acknowledgement (unicast data
        frames under an ACK-enabled MAC).
    source_seq:
        Per-*source* monotonic application sequence number, stamped by
        the traffic source (or routing layer) that created the frame.
        Distinct from :attr:`sequence`, which the MAC assigns per
        transmission attempt queue entry: ``source_seq`` survives
        multi-hop re-framing and is what end-to-end metrics key on.
    created_s:
        Simulation time at which the *application* payload was created
        (``None`` for frames no source stamped, e.g. MAC-generated
        ACKs).  End-to-end delay is ``delivery_time - created_s``.
    info:
        Opaque in-simulation metadata riding with the frame — the
        routing layer attaches its message header here.  ``info`` is
        never serialised to air; its on-air size must be accounted for
        in ``payload_bytes`` by whoever attaches it.
    """

    source: str
    destination: Optional[str]
    payload_bytes: int
    sequence: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    bit_rate_bps: int = BIT_RATE_BPS
    is_ack: bool = False
    ack_request: bool = False
    source_seq: int = 0
    created_s: Optional[float] = None
    info: Optional[object] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")
        if self.bit_rate_bps <= 0:
            raise ValueError(f"bit_rate_bps must be > 0, got {self.bit_rate_bps}")
        if self.is_ack:
            if self.payload_bytes != 0:
                raise ValueError("acknowledgement frames carry no payload")
            if self.ack_request:
                raise ValueError("acknowledgements are never themselves acked")
        else:
            # Validate MPDU bounds eagerly so misconfiguration fails early.
            frame_airtime_s(self.payload_bytes, self.bit_rate_bps)

    @classmethod
    def ack(cls, source: str, destination: str, sequence: int) -> "Frame":
        """Build the acknowledgement for a received frame."""
        return cls(
            source=source,
            destination=destination,
            payload_bytes=0,
            sequence=sequence,
            is_ack=True,
        )

    @property
    def airtime_s(self) -> float:
        if self.is_ack:
            return ack_airtime_s(self.bit_rate_bps)
        return frame_airtime_s(self.payload_bytes, self.bit_rate_bps)

    @property
    def total_bits(self) -> int:
        if self.is_ack:
            return (PHY_HEADER_BYTES + ACK_MPDU_BYTES) * 8
        mpdu = MHR_BYTES + self.payload_bytes + FCS_BYTES
        return (PHY_HEADER_BYTES + mpdu) * 8

    @property
    def mpdu_bits(self) -> int:
        """Bits covered by the CRC (MAC header + payload + FCS)."""
        if self.is_ack:
            return ACK_MPDU_BYTES * 8
        return (MHR_BYTES + self.payload_bytes + FCS_BYTES) * 8

    def is_broadcast(self) -> bool:
        return self.destination is None
