"""Spectral leakage / adjacent-channel-rejection curves.

``leakage_db(delta_f)`` is the attenuation (in dB, >= 0) that a signal
transmitted with its centre ``delta_f`` MHz away from the receiver's channel
suffers before it lands in the receiver's passband.  The same curve governs

1. the interference power an off-channel transmission injects into a
   reception (SINR denominator), and
2. the energy an off-channel transmission contributes to a CCA / RSSI
   in-channel measurement.

This single curve is the physical quantity the whole paper rests on: the
trade-off between "more channels" and "more inter-channel interference" is
exactly the shape of this function.  The default
:data:`CC2420_LEAKAGE_POINTS` are calibrated (see
``tests/phy/test_calibration.py``) so that the collided-packet receive rate
versus CFD reproduces the paper's Fig. 4 anchors:

==========  ==================  =====================
CFD (MHz)   CPRR (paper Fig.4)  leakage here (dB)
==========  ==================  =====================
1           < 20 %              2
2           ~ 70 %              10.3
3           ~ 97 %              18
4           100 %               25
5 (ZigBee)  100 %, not fully    30
            orthogonal
>= 9        fully orthogonal    >= 48
==========  ==================  =====================
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence, Tuple

__all__ = [
    "SpectralMask",
    "PiecewiseLinearMask",
    "ShiftedMask",
    "PerfectOrthogonalMask",
    "CC2420_LEAKAGE_POINTS",
    "CCA_LEAKAGE_POINTS",
    "CCA_EXTRA_REJECTION_DB",
    "default_mask",
    "default_cca_mask",
]


class SpectralMask:
    """Interface: attenuation of an off-channel signal, in dB."""

    def leakage_db(self, delta_f_mhz: float) -> float:
        raise NotImplementedError

    def leakage_db_batch(self, delta_f_mhz: "object") -> "object":
        """Attenuation for an array of frequency offsets.

        Returns a float64 numpy array, bit-identical to element-wise
        :meth:`leakage_db` calls (the default loops; overrides must keep
        the guarantee — the vectorized medium relies on it when deriving
        band-shard interaction bounds).
        """
        import numpy as np

        out = np.empty(len(delta_f_mhz))
        for i, df in enumerate(delta_f_mhz):
            out[i] = self.leakage_db(float(df))
        return out

    def attenuated_power_dbm(self, power_dbm: float, delta_f_mhz: float) -> float:
        """Received in-band power of a signal offset by ``delta_f_mhz``."""
        return power_dbm - self.leakage_db(delta_f_mhz)


class PiecewiseLinearMask(SpectralMask):
    """Piecewise-linear attenuation over |Δf|, capped at ``max_db``.

    Parameters
    ----------
    points:
        ``(delta_f_mhz, attenuation_db)`` pairs; must start at Δf = 0 and be
        sorted by Δf with non-decreasing attenuation (a physical receiver
        filter never passes *more* energy further from the carrier).
    max_db:
        Attenuation applied beyond the last point.
    """

    def __init__(
        self, points: Sequence[Tuple[float, float]], max_db: float = 60.0
    ) -> None:
        if not points:
            raise ValueError("mask needs at least one point")
        freqs = [p[0] for p in points]
        attens = [p[1] for p in points]
        if freqs[0] != 0.0:
            raise ValueError("mask must start at delta_f = 0")
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ValueError("mask frequencies must be strictly increasing")
        if any(b < a for a, b in zip(attens, attens[1:])):
            raise ValueError("mask attenuation must be non-decreasing")
        if max_db < attens[-1]:
            raise ValueError("max_db must be >= the last point's attenuation")
        self._freqs = list(freqs)
        self._attens = list(attens)
        self.max_db = max_db

    def leakage_db(self, delta_f_mhz: float) -> float:
        df = abs(delta_f_mhz)
        if df >= self._freqs[-1]:
            # Linear continuation toward the cap using the last segment slope.
            if len(self._freqs) >= 2:
                slope = (self._attens[-1] - self._attens[-2]) / (
                    self._freqs[-1] - self._freqs[-2]
                )
            else:
                slope = 0.0
            extended = self._attens[-1] + slope * (df - self._freqs[-1])
            return min(extended, self.max_db)
        idx = bisect_right(self._freqs, df) - 1
        if idx < 0:
            return self._attens[0]
        f0, f1 = self._freqs[idx], self._freqs[idx + 1]
        a0, a1 = self._attens[idx], self._attens[idx + 1]
        frac = (df - f0) / (f1 - f0)
        return a0 + frac * (a1 - a0)

    def leakage_db_batch(self, delta_f_mhz: "object") -> "object":
        # Bit-identical to the scalar method: linear interpolation uses
        # only IEEE-exact elementwise ops (+, -, *, /, min), and
        # searchsorted reproduces bisect_right exactly.
        import numpy as np

        df = np.abs(np.asarray(delta_f_mhz, dtype=float))
        freqs = np.asarray(self._freqs)
        attens = np.asarray(self._attens)
        out = np.empty(df.shape)
        beyond = df >= self._freqs[-1]
        if beyond.any():
            if len(self._freqs) >= 2:
                slope = (self._attens[-1] - self._attens[-2]) / (
                    self._freqs[-1] - self._freqs[-2]
                )
            else:
                slope = 0.0
            extended = self._attens[-1] + slope * (df[beyond] - self._freqs[-1])
            out[beyond] = np.minimum(extended, self.max_db)
        inner = ~beyond
        if inner.any():
            dfi = df[inner]
            # df >= 0 and freqs[0] == 0, so idx >= 0 always.
            idx = np.searchsorted(freqs, dfi, side="right") - 1
            f0 = freqs[idx]
            a0 = attens[idx]
            frac = (dfi - f0) / (freqs[idx + 1] - f0)
            out[inner] = a0 + frac * (attens[idx + 1] - a0)
        return out


class ShiftedMask(SpectralMask):
    """A mask with ``extra_db`` additional rejection beyond ``from_mhz``.

    Used to model the CC2420's *CCA/RSSI sensing path*, whose channel
    filter rejects adjacent-channel energy a few dB more sharply than the
    demodulator's effective interference coupling (the quantity the CPRR
    experiments calibrate).  Keeping the two curves separate lets the model
    honour both the Fig. 4 CPRR anchors (decode path) and the paper's
    network-level CCA-blocking levels (sensing path) simultaneously.
    """

    def __init__(
        self, base: SpectralMask, extra_db: float = 5.0, from_mhz: float = 0.75
    ) -> None:
        if extra_db < 0:
            raise ValueError("extra_db must be >= 0")
        self.base = base
        self.extra_db = extra_db
        self.from_mhz = from_mhz

    def leakage_db(self, delta_f_mhz: float) -> float:
        base_db = self.base.leakage_db(delta_f_mhz)
        if abs(delta_f_mhz) <= self.from_mhz:
            return base_db
        return base_db + self.extra_db


class PerfectOrthogonalMask(SpectralMask):
    """Idealised filter: zero leakage off-channel, used for ablations.

    Any signal whose centre differs from the receiver channel by more than
    ``co_channel_tolerance_mhz`` is attenuated by ``max_db``.
    """

    def __init__(
        self, co_channel_tolerance_mhz: float = 0.25, max_db: float = 200.0
    ) -> None:
        self.co_channel_tolerance_mhz = co_channel_tolerance_mhz
        self.max_db = max_db

    def leakage_db(self, delta_f_mhz: float) -> float:
        if abs(delta_f_mhz) <= self.co_channel_tolerance_mhz:
            return 0.0
        return self.max_db


#: Calibrated CC2420-like leakage anchors (see module docstring and
#: ``tests/phy/test_calibration.py``).
CC2420_LEAKAGE_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (1.0, 2.0),
    (2.0, 10.3),
    (3.0, 18.0),
    (4.0, 25.0),
    (5.0, 30.0),
    (6.0, 35.0),
    (7.0, 40.0),
    (8.0, 44.0),
    (9.0, 48.0),
    (12.0, 56.0),
)


def default_mask() -> PiecewiseLinearMask:
    """The CC2420-calibrated *decode-path* mask (CPRR anchors, Fig. 4)."""
    return PiecewiseLinearMask(CC2420_LEAKAGE_POINTS, max_db=60.0)


#: Sensing-path (CCA/RSSI) rejection anchors.  The CC2420's RSSI channel
#: filter rolls off faster than the demodulator's effective interference
#: coupling: a couple of dB sharper at 2 MHz and markedly sharper from
#: 3 MHz out.  Calibrated against the paper's network-level observations:
#: at CFD = 3 MHz the default -77 dBm CCA is tripped only by *nearby*
#: cross-channel transmitters (Figs. 6, 14: partial blocking), while at
#: CFD = 2 MHz neighbouring channels couple into one carrier-sense domain
#: (Fig. 1's throughput drop at 2 MHz).
CCA_LEAKAGE_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (1.0, 3.0),
    (2.0, 11.0),
    (3.0, 26.0),
    (4.0, 33.0),
    (5.0, 38.0),
    (6.0, 43.0),
    (7.0, 47.0),
    (8.0, 51.0),
    (9.0, 55.0),
    (12.0, 62.0),
)

#: Kept for backwards compatibility / ablations: a flat extra rejection.
CCA_EXTRA_REJECTION_DB = 5.0


def default_cca_mask(base: SpectralMask | None = None) -> SpectralMask:
    """The sensing-path mask used for CCA / RSSI-register measurements.

    ``base`` is accepted for signature compatibility; when a caller supplies
    a custom decode mask (e.g. the 802.11b substrate) the sensing path
    falls back to a flat extra rejection on top of it, otherwise the
    CC2420-calibrated :data:`CCA_LEAKAGE_POINTS` curve is used.
    """
    if base is None or _is_default_decode_mask(base):
        return PiecewiseLinearMask(CCA_LEAKAGE_POINTS, max_db=66.0)
    return ShiftedMask(base, extra_db=CCA_EXTRA_REJECTION_DB)


def _is_default_decode_mask(mask: SpectralMask) -> bool:
    if not isinstance(mask, PiecewiseLinearMask):
        return False
    points = tuple(zip(mask._freqs, mask._attens))
    return points == CC2420_LEAKAGE_POINTS
