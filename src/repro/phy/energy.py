"""Radio energy accounting (CC2420 current-draw model).

The paper justifies DCN's two-phase design on cost grounds: continuous
in-channel power sensing is affordable only during the short initializing
phase, while RSSI snooping afterwards is free.  This module makes that
argument measurable: every radio accrues time-in-state, and
:class:`EnergyModel` converts state durations (plus explicit sensing
samples) into Joules using CC2420 datasheet currents.

Currents (3.0 V supply):

- receive / listen: 18.8 mA — the CC2420 listens at full RX current;
- transmit: depends on PA level, 8.5 mA at -25 dBm up to 17.4 mA at 0 dBm;
- each RSSI-register sample costs an SPI transaction on the host MCU
  (~0.1 ms at ~8 mA, ATmega128L-class).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["EnergyModel", "EnergyAccumulator", "DEFAULT_ENERGY_MODEL"]

#: (tx power dBm, current mA) — CC2420 datasheet output-power table.
CC2420_TX_CURRENT_MA: Tuple[Tuple[float, float], ...] = (
    (-25.0, 8.5),
    (-15.0, 9.9),
    (-10.0, 11.0),
    (-7.0, 12.5),
    (-5.0, 14.0),
    (-3.0, 15.2),
    (-1.0, 16.5),
    (0.0, 17.4),
)


@dataclass(frozen=True)
class EnergyModel:
    """Converts radio activity into energy."""

    supply_voltage_v: float = 3.0
    rx_current_ma: float = 18.8
    tx_currents_ma: Tuple[Tuple[float, float], ...] = CC2420_TX_CURRENT_MA
    #: Host-MCU cost of one RSSI register read over SPI.
    sense_sample_energy_j: float = 0.1e-3 * 8e-3 * 3.0  # 0.1 ms @ 8 mA @ 3 V

    def tx_current_ma(self, power_dbm: float) -> float:
        """TX current at the given output power (interpolated)."""
        points = self.tx_currents_ma
        powers = [p for p, _ in points]
        if power_dbm <= powers[0]:
            return points[0][1]
        if power_dbm >= powers[-1]:
            return points[-1][1]
        idx = bisect_left(powers, power_dbm)
        (p0, c0), (p1, c1) = points[idx - 1], points[idx]
        frac = (power_dbm - p0) / (p1 - p0)
        return c0 + frac * (c1 - c0)

    def tx_energy_j(self, duration_s: float, power_dbm: float) -> float:
        return duration_s * self.tx_current_ma(power_dbm) * 1e-3 * self.supply_voltage_v

    def rx_energy_j(self, duration_s: float) -> float:
        return duration_s * self.rx_current_ma * 1e-3 * self.supply_voltage_v

    def sensing_energy_j(self, n_samples: int) -> float:
        return n_samples * self.sense_sample_energy_j


DEFAULT_ENERGY_MODEL = EnergyModel()


@dataclass
class EnergyAccumulator:
    """Per-radio time-in-state ledger.

    The radio calls :meth:`transition` at every state change; consumers
    call :meth:`energy_j` (which implicitly closes the open interval at
    ``now``).  RSSI sensing samples are counted separately because they
    cost MCU energy, not radio energy.
    """

    model: EnergyModel = field(default_factory=lambda: DEFAULT_ENERGY_MODEL)
    tx_power_dbm: float = 0.0
    _state: str = "idle"
    _since: float = 0.0
    _durations: Dict[str, float] = field(default_factory=dict)
    sense_samples: int = 0

    def transition(self, state: str, now: float) -> None:
        if now < self._since:
            raise ValueError(f"time went backwards: {now} < {self._since}")
        self._durations[self._state] = (
            self._durations.get(self._state, 0.0) + now - self._since
        )
        self._state = state
        self._since = now

    def note_sense_sample(self) -> None:
        self.sense_samples += 1

    def durations(self, now: float) -> Dict[str, float]:
        """Time spent per state, with the open interval closed at ``now``."""
        result = dict(self._durations)
        result[self._state] = result.get(self._state, 0.0) + now - self._since
        return result

    def energy_j(self, now: float) -> float:
        """Total energy consumed up to ``now``."""
        durations = self.durations(now)
        tx_s = durations.get("tx", 0.0)
        # Everything not transmitting is listening (the CC2420 draws full
        # RX current whenever the receiver is on).
        listen_s = sum(v for k, v in durations.items() if k != "tx")
        return (
            self.model.tx_energy_j(tx_s, self.tx_power_dbm)
            + self.model.rx_energy_j(listen_s)
            + self.model.sensing_energy_j(self.sense_samples)
        )

    def breakdown_j(self, now: float) -> Dict[str, float]:
        """Energy per contributor: tx / listen / sensing."""
        durations = self.durations(now)
        tx_s = durations.get("tx", 0.0)
        listen_s = sum(v for k, v in durations.items() if k != "tx")
        return {
            "tx": self.model.tx_energy_j(tx_s, self.tx_power_dbm),
            "listen": self.model.rx_energy_j(listen_s),
            "sensing": self.model.sensing_energy_j(self.sense_samples),
        }
